"""Tests of switching-activity and energy estimation (Fig. 5 engine)."""

import numpy as np
import pytest

from repro.core.padding import Padding, compressed_input_sampler
from repro.power.energy import EnergyModel
from repro.power.switching import estimate_switching_activity


class TestSwitchingActivity:
    def test_activity_is_positive_for_random_traffic(self, small_mac, rng):
        activity = estimate_switching_activity(small_mac, num_transitions=50, rng=0)
        assert activity.total_internal_toggles > 0
        assert activity.input_toggles > 0
        assert activity.average_toggles_per_transition > 0

    def test_constant_traffic_produces_no_toggles(self, small_mac):
        sampler = lambda _rng: {"a": 5, "b": 5, "c": 100}
        activity = estimate_switching_activity(
            small_mac, num_transitions=20, rng=0, input_sampler=sampler
        )
        assert activity.total_internal_toggles == 0
        assert activity.input_toggles == 0

    def test_toggle_bookkeeping_consistent(self, small_mac):
        activity = estimate_switching_activity(small_mac, num_transitions=30, rng=1)
        assert sum(activity.toggles_per_cell.values()) == activity.total_internal_toggles
        assert set(activity.toggles_per_gate) == {gate.name for gate in small_mac.netlist.gates}

    def test_invalid_transition_count(self, small_mac):
        with pytest.raises(ValueError):
            estimate_switching_activity(small_mac, num_transitions=0)


class TestActivityModes:
    """The glitch-aware event mode against the zero-delay baseline."""

    def test_event_mode_dominates_zero_delay_per_gate(self, small_mac, fresh_cells):
        # Same rng and shard plan -> both modes simulate the identical
        # vector chains, so every functional toggle the zero-delay count
        # sees must also commit in the event simulation; the surplus is
        # glitch activity.
        zero_delay = estimate_switching_activity(small_mac, num_transitions=200, rng=9)
        event = estimate_switching_activity(
            small_mac, num_transitions=200, rng=9, mode="event", delay_source=fresh_cells
        )
        for gate in small_mac.netlist.gates:
            assert (
                event.toggles_per_gate[gate.name]
                >= zero_delay.toggles_per_gate[gate.name]
            )
        assert event.total_internal_toggles > zero_delay.total_internal_toggles
        assert event.input_toggles == zero_delay.input_toggles
        assert zero_delay.mode == "zero-delay" and not zero_delay.is_glitch_aware
        assert event.mode == "event" and event.is_glitch_aware

    def test_zero_delay_matches_scalar_functional_toggles(self, small_mac):
        # Replay the first shard's chain with the scalar zero-delay
        # simulator and count functional changes per gate output.
        from repro.circuits.simulator import LogicSimulator
        from repro.parallel import spawn_seed_sequences

        transitions = 60
        activity = estimate_switching_activity(
            small_mac, num_transitions=transitions, rng=21
        )
        generator = np.random.default_rng(spawn_seed_sequences(21, 1)[0])
        vectors = {
            name: generator.integers(
                0, 1 << len(nets), size=transitions + 1, dtype=np.uint64
            ).tolist()
            for name, nets in small_mac.netlist.input_buses.items()
        }
        simulator = LogicSimulator(small_mac.netlist)
        reference: dict[str, int] = {}
        previous = None
        for index in range(transitions + 1):
            bits = simulator.evaluate_bits(
                {name: values[index] for name, values in vectors.items()}
            )
            if previous is not None:
                for net, value in bits.items():
                    if previous[net] != value:
                        reference[net.name] = reference.get(net.name, 0) + 1
            previous = bits
        for gate in small_mac.netlist.gates:
            assert activity.toggles_per_gate[gate.name] == reference.get(
                gate.output.name, 0
            )

    @pytest.mark.parametrize("mode", ["zero-delay", "event"])
    def test_bit_identical_for_any_workers_and_chunking(
        self, small_mac, fresh_cells, mode
    ):
        kwargs = dict(
            num_transitions=120,
            rng=5,
            mode=mode,
            delay_source=fresh_cells if mode == "event" else None,
            transitions_per_shard=25,
        )
        serial = estimate_switching_activity(small_mac, **kwargs)
        for workers, chunk_size in [(2, None), (3, 1), (-1, 2)]:
            parallel = estimate_switching_activity(
                small_mac, workers=workers, chunk_size=chunk_size, **kwargs
            )
            assert parallel == serial

    def test_closure_sampler_parallelises_or_degrades_serially(self, small_mac):
        # A local lambda cannot be pickled; under fork the workers inherit
        # it, on spawn platforms the executor degrades to serial — either
        # way the counts are those of the constant chain: zero toggles.
        import warnings

        sampler = lambda _rng: {"a": 5, "b": 5, "c": 100}  # noqa: E731
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            activity = estimate_switching_activity(
                small_mac, num_transitions=40, rng=0,
                input_sampler=sampler, workers=2, transitions_per_shard=10,
            )
        assert activity.total_internal_toggles == 0

    def test_constant_traffic_produces_no_event_toggles(self, small_mac, fresh_cells):
        sampler = lambda _rng: {"a": 5, "b": 5, "c": 100}  # noqa: E731
        activity = estimate_switching_activity(
            small_mac, num_transitions=20, rng=0,
            input_sampler=sampler, mode="event", delay_source=fresh_cells,
        )
        assert activity.total_internal_toggles == 0
        assert activity.input_toggles == 0

    def test_event_mode_requires_a_delay_source(self, small_mac):
        with pytest.raises(ValueError, match="delay_source"):
            estimate_switching_activity(small_mac, num_transitions=10, mode="event")

    def test_unknown_mode_rejected(self, small_mac):
        with pytest.raises(ValueError, match="mode"):
            estimate_switching_activity(small_mac, num_transitions=10, mode="exact")

    def test_invalid_shard_size_rejected(self, small_mac):
        with pytest.raises(ValueError, match="transitions_per_shard"):
            estimate_switching_activity(
                small_mac, num_transitions=10, transitions_per_shard=0
            )

    def test_energy_model_prices_glitches_with_its_own_delay_source(
        self, small_mac, fresh_cells
    ):
        model = EnergyModel(fresh_cells)
        zero_delay = model.estimate_operation_energy(
            small_mac, clock_period_ps=500.0, num_transitions=80, rng=4
        )
        event = model.estimate_operation_energy(
            small_mac, clock_period_ps=500.0, num_transitions=80, rng=4,
            activity_mode="event",
        )
        # Identical chains, so the glitch surplus strictly raises the
        # dynamic term while leakage (activity-independent) is unchanged.
        assert event.dynamic_energy_fj > zero_delay.dynamic_energy_fj
        assert event.leakage_energy_fj == zero_delay.leakage_energy_fj


class TestEnergyModel:
    def test_energy_report_totals(self, small_mac, fresh_cells):
        model = EnergyModel(fresh_cells)
        report = model.estimate_operation_energy(small_mac, clock_period_ps=500.0, num_transitions=40, rng=0)
        assert report.dynamic_energy_fj > 0
        assert report.leakage_energy_fj > 0
        assert report.total_energy_fj == pytest.approx(
            report.dynamic_energy_fj + report.leakage_energy_fj
        )
        assert report.energy_per_operation_fj > 0

    def test_compressed_traffic_uses_less_energy(self, paper_mac, fresh_cells):
        model = EnergyModel(fresh_cells)
        baseline = model.estimate_operation_energy(
            paper_mac, clock_period_ps=900.0, num_transitions=60, rng=0
        )
        sampler = compressed_input_sampler(paper_mac, 4, 4, Padding.MSB)
        compressed = model.estimate_operation_energy(
            paper_mac, clock_period_ps=900.0, num_transitions=60, rng=0, input_sampler=sampler
        )
        assert compressed.energy_per_operation_fj < baseline.energy_per_operation_fj

    def test_longer_period_increases_leakage_energy(self, small_mac, fresh_cells):
        model = EnergyModel(fresh_cells)
        short = model.estimate_operation_energy(small_mac, clock_period_ps=200.0, num_transitions=30, rng=0)
        long = model.estimate_operation_energy(small_mac, clock_period_ps=800.0, num_transitions=30, rng=0)
        assert long.leakage_energy_fj > short.leakage_energy_fj

    def test_invalid_period(self, small_mac, fresh_cells):
        with pytest.raises(ValueError):
            EnergyModel(fresh_cells).estimate_operation_energy(small_mac, clock_period_ps=0.0)


class TestCompressedInputSampler:
    def test_msb_padding_keeps_values_in_low_range(self, paper_mac):
        sampler = compressed_input_sampler(paper_mac, 3, 2, Padding.MSB)
        generator = np.random.default_rng(0)
        for _ in range(50):
            inputs = sampler(generator)
            assert 0 <= inputs["a"] < (1 << 5)
            assert 0 <= inputs["b"] < (1 << 6)
            assert 0 <= inputs["c"] < (1 << 17)

    def test_lsb_padding_shifts_values_up(self, paper_mac):
        sampler = compressed_input_sampler(paper_mac, 3, 2, Padding.LSB)
        generator = np.random.default_rng(0)
        saw_nonzero = False
        for _ in range(50):
            inputs = sampler(generator)
            assert inputs["a"] % (1 << 3) == 0
            assert inputs["b"] % (1 << 2) == 0
            assert inputs["c"] % (1 << 5) == 0
            saw_nonzero = saw_nonzero or inputs["a"] > 0
        assert saw_nonzero

    def test_out_of_range_compression_rejected(self, paper_mac):
        with pytest.raises(ValueError):
            compressed_input_sampler(paper_mac, 9, 0, Padding.MSB)


class TestVectorisedLeakage:
    """The NumPy energy reductions against the original per-gate Python loops."""

    def _scenarios(self, fresh_cells):
        from repro.aging.scenarios import (
            MissionProfile,
            PerCellTypeAging,
            UniformAging,
            VariationAging,
        )

        return [
            UniformAging(0.0, library=fresh_cells),
            UniformAging(30.0, library=fresh_cells),
            MissionProfile(
                years=5.0, temperature_c=85.0, duty_cycle=0.8, library=fresh_cells
            ),
            PerCellTypeAging(
                levels_mv={"NAND2": 40.0, "INV": 10.0},
                default_mv=20.0,
                library=fresh_cells,
            ),
            VariationAging(25.0, 6.0, seed=7, library=fresh_cells),
        ]

    def _loop_report(self, model, target, activity, clock_period_ps):
        # The pre-vectorisation implementation, kept verbatim as the
        # bit-identity reference.
        netlist = target.netlist
        gate_leakage = model._gate_leakage_nw(netlist)
        dynamic_fj = 0.0
        leakage_nw = 0.0
        for gate in netlist.gates:
            toggles = activity.toggles_per_gate.get(gate.name, 0)
            dynamic_fj += toggles * model.library.switching_energy_fj(gate.cell_name)
            leakage_nw += gate_leakage[gate]
        leakage_fj = leakage_nw * clock_period_ps * activity.num_transitions * 1e-6
        return dynamic_fj, leakage_fj

    def test_scenario_paths_bit_identical_to_the_loop(self, small_mac, fresh_cells):
        activity = estimate_switching_activity(small_mac, num_transitions=40, rng=2)
        for scenario in self._scenarios(fresh_cells):
            model = EnergyModel(scenario)
            report = model.energy_from_activity(small_mac, activity, 500.0)
            dynamic_fj, leakage_fj = self._loop_report(model, small_mac, activity, 500.0)
            assert report.dynamic_energy_fj == dynamic_fj  # bit-identical, not approx
            assert report.leakage_energy_fj == leakage_fj

    def test_library_path_bit_identical_to_the_loop(self, small_mac, library_set):
        activity = estimate_switching_activity(small_mac, num_transitions=40, rng=2)
        for level in (0.0, 30.0, 50.0):
            model = EnergyModel(library_set.library(level))
            report = model.energy_from_activity(small_mac, activity, 500.0)
            dynamic_fj, leakage_fj = self._loop_report(model, small_mac, activity, 500.0)
            assert report.dynamic_energy_fj == dynamic_fj
            assert report.leakage_energy_fj == leakage_fj

    def test_delta_columns_match_per_scenario_reports(self, small_mac, fresh_cells):
        import numpy as np

        from repro.power.energy import delta_leakage_nw, scenario_energy_reports

        scenarios = self._scenarios(fresh_cells)
        activity = estimate_switching_activity(small_mac, num_transitions=40, rng=2)
        deltas = np.stack(
            [s.gate_delta_vth_mv(small_mac.netlist, fresh_cells) for s in scenarios],
            axis=1,
        )
        reports = scenario_energy_reports(small_mac, deltas, activity, 500.0, fresh_cells)
        columns = delta_leakage_nw(small_mac.netlist, deltas, fresh_cells)
        assert len(reports) == len(scenarios) == columns.shape[0]
        for scenario, report, column in zip(scenarios, reports, columns):
            reference = EnergyModel(scenario).energy_from_activity(
                small_mac, activity, 500.0
            )
            assert report == reference
            single = delta_leakage_nw(
                small_mac.netlist,
                scenario.gate_delta_vth_mv(small_mac.netlist, fresh_cells),
                fresh_cells,
            )
            assert float(single) == float(column)

    def test_delta_columns_validate_shape_and_period(self, small_mac, fresh_cells):
        import numpy as np

        from repro.power.energy import delta_leakage_nw, scenario_energy_reports

        activity = estimate_switching_activity(small_mac, num_transitions=10, rng=0)
        bad = np.zeros((3, 2))
        with pytest.raises(ValueError, match="row per gate"):
            delta_leakage_nw(small_mac.netlist, bad, fresh_cells)
        gates = len(small_mac.netlist.topological_gates())
        with pytest.raises(ValueError, match="gates, scenarios"):
            scenario_energy_reports(
                small_mac, np.zeros(gates), activity, 500.0, fresh_cells
            )
        with pytest.raises(ValueError, match="clock_period_ps"):
            scenario_energy_reports(
                small_mac, np.zeros((gates, 1)), activity, 0.0, fresh_cells
            )
