"""Tests of the static timing analysis engine and its case-analysis mode."""

import pytest

from repro.circuits.mac import build_mac, build_multiplier
from repro.core.padding import Padding, mac_case_analysis, multiplier_case_analysis
from repro.timing.sta import StaticTimingAnalyzer


class TestCriticalPath:
    def test_positive_delay(self, small_mac, fresh_cells):
        assert StaticTimingAnalyzer(small_mac, fresh_cells).critical_path_delay() > 0

    def test_wider_multiplier_is_slower(self, fresh_cells):
        narrow = StaticTimingAnalyzer(build_multiplier(4), fresh_cells).critical_path_delay()
        wide = StaticTimingAnalyzer(build_multiplier(8), fresh_cells).critical_path_delay()
        assert wide > narrow

    def test_aging_scales_critical_path(self, small_mac, library_set):
        fresh = StaticTimingAnalyzer(small_mac, library_set.fresh).critical_path_delay()
        aged = StaticTimingAnalyzer(small_mac, library_set.library(50.0)).critical_path_delay()
        assert aged / fresh == pytest.approx(
            library_set.library(50.0).delay_degradation_factor, rel=1e-9
        )

    def test_critical_path_structure(self, small_mac, fresh_cells):
        analyzer = StaticTimingAnalyzer(small_mac, fresh_cells)
        path = analyzer.critical_path()
        assert path.delay_ps == pytest.approx(analyzer.critical_path_delay())
        assert path.depth >= 2
        assert path.endpoint.startswith("out") or path.endpoint in small_mac.netlist.nets

    def test_slack_and_meets_timing(self, small_mac, fresh_cells):
        analyzer = StaticTimingAnalyzer(small_mac, fresh_cells)
        delay = analyzer.critical_path_delay()
        assert analyzer.meets_timing(delay + 1.0)
        assert not analyzer.meets_timing(delay - 1.0)
        assert analyzer.slack_ps(delay) == pytest.approx(0.0, abs=1e-9)
        with pytest.raises(ValueError):
            analyzer.slack_ps(0.0)


class TestCaseAnalysis:
    def test_compression_reduces_delay(self, fresh_cells):
        multiplier = build_multiplier(8, "array")
        analyzer = StaticTimingAnalyzer(multiplier, fresh_cells)
        baseline = analyzer.critical_path_delay()
        compressed = analyzer.critical_path_delay(
            multiplier_case_analysis(4, 4, Padding.MSB, width=8)
        )
        assert compressed < baseline

    def test_compression_monotone_in_alpha(self, fresh_cells):
        multiplier = build_multiplier(8, "array")
        analyzer = StaticTimingAnalyzer(multiplier, fresh_cells)
        delays = [
            analyzer.critical_path_delay(multiplier_case_analysis(alpha, 0, Padding.MSB))
            for alpha in range(0, 7)
        ]
        for previous, current in zip(delays, delays[1:]):
            assert current <= previous + 1e-9

    def test_msb_and_lsb_padding_differ(self, fresh_cells):
        mac = build_mac()
        analyzer = StaticTimingAnalyzer(mac, fresh_cells)
        msb = analyzer.critical_path_delay(mac_case_analysis(3, 3, Padding.MSB))
        lsb = analyzer.critical_path_delay(mac_case_analysis(3, 3, Padding.LSB))
        assert msb != lsb

    def test_aged_compressed_can_beat_fresh_uncompressed(self, library_set):
        mac = build_mac()
        fresh_delay = StaticTimingAnalyzer(mac, library_set.fresh).critical_path_delay()
        aged_analyzer = StaticTimingAnalyzer(mac, library_set.library(50.0))
        compressed = aged_analyzer.critical_path_delay(mac_case_analysis(4, 4, Padding.LSB))
        assert compressed <= fresh_delay

    def test_unknown_case_net_rejected(self, small_mac, fresh_cells):
        analyzer = StaticTimingAnalyzer(small_mac, fresh_cells)
        with pytest.raises(KeyError):
            analyzer.critical_path_delay({"nonexistent[0]": 0})

    def test_invalid_case_value_rejected(self, small_mac, fresh_cells):
        analyzer = StaticTimingAnalyzer(small_mac, fresh_cells)
        with pytest.raises(ValueError):
            analyzer.critical_path_delay({"a[0]": 2})

    def test_fully_constant_inputs_give_zero_delay(self, small_multiplier, fresh_cells):
        analyzer = StaticTimingAnalyzer(small_multiplier, fresh_cells)
        case = {f"a[{i}]": 0 for i in range(4)}
        case.update({f"b[{i}]": 0 for i in range(4)})
        assert analyzer.critical_path_delay(case) == 0.0


class TestScenarioCaseDelays:
    """Scenario-column STA batching against per-scenario analyzers."""

    def _scenarios(self, fresh_cells):
        from repro.aging.scenarios import (
            MissionProfile,
            PerCellTypeAging,
            UniformAging,
            VariationAging,
        )

        return [
            UniformAging(0.0, library=fresh_cells),
            UniformAging(30.0, library=fresh_cells),
            MissionProfile(
                years=5.0, temperature_c=85.0, duty_cycle=0.8, library=fresh_cells
            ),
            PerCellTypeAging(
                levels_mv={"NAND2": 40.0, "INV": 10.0},
                default_mv=20.0,
                library=fresh_cells,
            ),
            VariationAging(25.0, 6.0, seed=7, library=fresh_cells),
            VariationAging(25.0, 6.0, seed=8, library=fresh_cells),
        ]

    def test_reproduces_per_scenario_delays_bit_identically(self, small_mac, fresh_cells):
        from repro.timing.sta import scenario_case_delays

        scenarios = self._scenarios(fresh_cells)
        batched = scenario_case_delays(small_mac, scenarios, fresh_cells)
        scalar = [
            StaticTimingAnalyzer(small_mac, scenario).critical_path_delay()
            for scenario in scenarios
        ]
        assert batched == scalar  # bit-identical floats, not approx

    def test_supports_shared_case_analysis(self, small_mac, fresh_cells):
        from repro.timing.sta import scenario_case_delays

        scenarios = self._scenarios(fresh_cells)
        case = mac_case_analysis(2, 2, Padding.MSB, multiplier_width=4, accumulator_width=10)
        batched = scenario_case_delays(small_mac, scenarios, fresh_cells, case_analysis=case)
        scalar = [
            StaticTimingAnalyzer(small_mac, scenario).critical_path_delay(case)
            for scenario in scenarios
        ]
        assert batched == scalar
        # Constants kill paths, so the compressed delays can only shrink.
        uncompressed = scenario_case_delays(small_mac, scenarios, fresh_cells)
        assert all(c <= u for c, u in zip(batched, uncompressed))

    def test_accepts_floats_and_counts_one_pass(self, small_mac, fresh_cells):
        from repro.circuits.backends import levelized_graph
        from repro.timing.sta import scenario_case_delays

        graph = levelized_graph(small_mac.netlist)
        before = graph.max_plus_passes
        batched = scenario_case_delays(small_mac, [0.0, 20.0, 50.0], fresh_cells)
        assert graph.max_plus_passes - before == 1
        scalar = [
            StaticTimingAnalyzer(small_mac, fresh_cells.aged(level)).critical_path_delay()
            for level in (0.0, 20.0, 50.0)
        ]
        assert batched == scalar

    def test_empty_and_invalid_inputs(self, small_mac, fresh_cells):
        from repro.timing.sta import scenario_case_delays

        assert scenario_case_delays(small_mac, [], fresh_cells) == []
        with pytest.raises(KeyError, match="missing"):
            scenario_case_delays(
                small_mac, [0.0], fresh_cells, case_analysis={"missing": 0}
            )
        with pytest.raises(ValueError, match="0/1"):
            scenario_case_delays(
                small_mac, [0.0], fresh_cells, case_analysis={"a[0]": 2}
            )
