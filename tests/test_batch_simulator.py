"""Equivalence and unit tests of the bit-parallel batched simulation engine.

The batched engine must be bit-for-bit equivalent to running the scalar
simulators once per lane — on the arithmetic circuits the experiments use,
and on randomized netlists, vectors, batch sizes and ΔVth levels.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aging.cell_library import AgingAwareLibrarySet, fresh_library
from repro.circuits.gates import (
    CELL_FUNCTIONS,
    CELL_INPUT_COUNTS,
    WORD_CELL_FUNCTIONS,
    evaluate_cell_word,
)
from repro.circuits.mac import build_mac, build_multiplier
from repro.circuits.netlist import (
    Netlist,
    bus_batches_to_words,
    words_to_bus_batches,
)
from repro.circuits.simulator import (
    BATCH_ARRIVAL_MODELS,
    BatchLogicSimulator,
    BatchTimingSimulator,
    LogicSimulator,
    TimingSimulator,
    lane_bits_to_word,
    word_to_lane_bits,
)
from repro.timing.error_model import characterize_timing_errors
from repro.timing.sta import StaticTimingAnalyzer

# Shared circuits (building them inside @given bodies would dominate runtime).
_MULT5 = build_multiplier(5, "array")
_MAC = build_mac(multiplier_width=5, accumulator_width=12)
_LIBRARIES = AgingAwareLibrarySet.generate((0.0, 20.0, 50.0))


# ----------------------------------------------------------------- helpers
@st.composite
def random_netlists(draw):
    """A small random combinational netlist over every supported cell."""
    netlist = Netlist("random")
    pool = list(netlist.add_input_bus("in", draw(st.integers(2, 5))))
    if draw(st.booleans()):
        pool.append(netlist.constant(0))
    if draw(st.booleans()):
        pool.append(netlist.constant(1))
    cells = sorted(CELL_FUNCTIONS)
    num_gates = draw(st.integers(1, 20))
    for _ in range(num_gates):
        cell = draw(st.sampled_from(cells))
        inputs = [
            pool[draw(st.integers(0, len(pool) - 1))]
            for _ in range(CELL_INPUT_COUNTS[cell])
        ]
        pool.append(netlist.add_gate(cell, inputs))
    width = draw(st.integers(1, min(4, num_gates)))
    netlist.add_output_bus("out", pool[-width:])
    return netlist


def _lane_inputs(netlist, rng, lanes):
    return {
        bus: [int(rng.integers(0, 1 << len(nets))) for _ in range(lanes)]
        for bus, nets in netlist.input_buses.items()
    }


def _lane_slice(batch, lane):
    return {bus: values[lane] for bus, values in batch.items()}


# ------------------------------------------------------------ word helpers
class TestWordHelpers:
    def test_word_round_trip(self):
        rng = np.random.default_rng(0)
        for lanes in (1, 7, 64, 65, 200):
            bits = rng.integers(0, 2, size=lanes).astype(bool)
            assert (word_to_lane_bits(lane_bits_to_word(bits), lanes) == bits).all()

    def test_bus_packing_round_trip(self):
        rng = np.random.default_rng(1)
        buses = _MULT5.netlist.input_buses
        values = {bus: [int(rng.integers(0, 32)) for _ in range(77)] for bus in buses}
        words, lanes = bus_batches_to_words(values, buses)
        assert lanes == 77
        assert words_to_bus_batches(words, buses, lanes) == values

    def test_bus_packing_validation(self):
        buses = _MULT5.netlist.input_buses
        with pytest.raises(KeyError):
            bus_batches_to_words({"a": [1]}, buses)
        with pytest.raises(ValueError):
            bus_batches_to_words({"a": [], "b": []}, buses)
        with pytest.raises(ValueError):
            bus_batches_to_words({"a": [1, 2], "b": [3]}, buses)
        with pytest.raises(ValueError):
            bus_batches_to_words({"a": [32], "b": [0]}, buses)
        with pytest.raises(ValueError):
            bus_batches_to_words({"a": [-1], "b": [0]}, buses)


class TestWordCellFunctions:
    def test_tables_cover_the_same_cells(self):
        assert set(WORD_CELL_FUNCTIONS) == set(CELL_FUNCTIONS)

    @given(seed=st.integers(0, 2**32 - 1), lanes=st.integers(1, 130))
    @settings(max_examples=30, deadline=None)
    def test_word_functions_match_scalar_per_lane(self, seed, lanes):
        rng = np.random.default_rng(seed)
        for cell, arity in CELL_INPUT_COUNTS.items():
            words = [
                lane_bits_to_word(rng.integers(0, 2, size=lanes).astype(bool))
                for _ in range(arity)
            ]
            result = evaluate_cell_word(cell, words, lanes)
            scalar = CELL_FUNCTIONS[cell]
            for lane in range(lanes):
                expected = scalar(*((word >> lane) & 1 for word in words))
                assert (result >> lane) & 1 == expected

    def test_word_function_validation(self):
        with pytest.raises(KeyError):
            evaluate_cell_word("NAND99", [0, 0], 4)
        with pytest.raises(ValueError):
            evaluate_cell_word("NAND2", [0], 4)
        with pytest.raises(ValueError):
            evaluate_cell_word("NAND2", [0, 0], 0)
        with pytest.raises(ValueError):
            evaluate_cell_word("NAND2", [1 << 4, 0], 4)


# -------------------------------------------------------- logic equivalence
class TestBatchLogicSimulator:
    @given(seed=st.integers(0, 2**32 - 1), lanes=st.integers(1, 80))
    @settings(max_examples=25, deadline=None)
    def test_matches_scalar_on_mac(self, seed, lanes):
        rng = np.random.default_rng(seed)
        inputs = _lane_inputs(_MAC.netlist, rng, lanes)
        batch = BatchLogicSimulator(_MAC.netlist).evaluate_batch(inputs)
        scalar = LogicSimulator(_MAC.netlist)
        for lane in range(lanes):
            assert _lane_slice(batch, lane) == scalar.evaluate(_lane_slice(inputs, lane))

    @given(netlist=random_netlists(), seed=st.integers(0, 2**32 - 1), lanes=st.integers(1, 70))
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_on_random_netlists(self, netlist, seed, lanes):
        rng = np.random.default_rng(seed)
        inputs = _lane_inputs(netlist, rng, lanes)
        batch = BatchLogicSimulator(netlist).evaluate_batch(inputs)
        scalar = LogicSimulator(netlist)
        for lane in range(lanes):
            assert _lane_slice(batch, lane) == scalar.evaluate(_lane_slice(inputs, lane))

    def test_single_lane_matches_multiplication(self):
        batch = BatchLogicSimulator(_MULT5.netlist).evaluate_batch({"a": [7], "b": [9]})
        assert batch["out"] == [63]


# ------------------------------------------------------- timing equivalence
class TestBatchTimingSimulator:
    @pytest.mark.parametrize("model", BATCH_ARRIVAL_MODELS)
    @pytest.mark.parametrize("level", [0.0, 50.0])
    def test_matches_scalar_on_mac(self, model, level):
        rng = np.random.default_rng(7)
        library = _LIBRARIES.library(level)
        lanes = 65
        previous = _lane_inputs(_MAC.netlist, rng, lanes)
        current = _lane_inputs(_MAC.netlist, rng, lanes)
        batch_sim = BatchTimingSimulator(_MAC.netlist, library, model)
        scalar_sim = TimingSimulator(_MAC.netlist, library, arrival_model=model)
        evaluation = batch_sim.propagate_batch(previous, current)
        finals = evaluation.final_outputs()
        previous_outputs = evaluation.previous_outputs()
        clock = float(np.quantile(evaluation.worst_arrival_ps, 0.5)) or 10.0
        captured = evaluation.captured_outputs(clock)
        for lane in range(lanes):
            reference = scalar_sim.propagate(
                _lane_slice(previous, lane), _lane_slice(current, lane)
            )
            assert _lane_slice(finals, lane) == reference.final_outputs
            assert _lane_slice(previous_outputs, lane) == reference.previous_outputs
            assert _lane_slice(captured, lane) == reference.captured_outputs(clock)
            assert evaluation.worst_arrival_ps[lane] == pytest.approx(
                reference.worst_arrival_ps, abs=1e-9
            )
            for bus, arrivals in evaluation.output_arrivals_ps.items():
                assert np.allclose(arrivals[:, lane], reference.output_arrivals_ps[bus])

    @given(
        netlist=random_netlists(),
        seed=st.integers(0, 2**32 - 1),
        lanes=st.integers(1, 40),
        model=st.sampled_from(BATCH_ARRIVAL_MODELS),
        level=st.sampled_from([0.0, 20.0, 50.0]),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_on_random_netlists(self, netlist, seed, lanes, model, level):
        rng = np.random.default_rng(seed)
        library = _LIBRARIES.library(level)
        previous = _lane_inputs(netlist, rng, lanes)
        current = _lane_inputs(netlist, rng, lanes)
        evaluation = BatchTimingSimulator(netlist, library, model).propagate_batch(
            previous, current
        )
        scalar_sim = TimingSimulator(netlist, library, arrival_model=model)
        finals = evaluation.final_outputs()
        clock = max(float(evaluation.worst_arrival_ps.max()) / 2, 1e-3)
        captured = evaluation.captured_outputs(clock)
        for lane in range(lanes):
            reference = scalar_sim.propagate(
                _lane_slice(previous, lane), _lane_slice(current, lane)
            )
            assert _lane_slice(finals, lane) == reference.final_outputs
            assert _lane_slice(captured, lane) == reference.captured_outputs(clock)
            assert evaluation.worst_arrival_ps[lane] == pytest.approx(
                reference.worst_arrival_ps, abs=1e-9
            )

    def test_no_transition_means_no_activity(self, fresh_cells):
        simulator = BatchTimingSimulator(_MULT5.netlist, fresh_cells)
        inputs = {"a": [5, 6], "b": [5, 6]}
        evaluation = simulator.propagate_batch(inputs, inputs)
        assert (evaluation.worst_arrival_ps == 0.0).all()
        assert not evaluation.has_timing_violation(1.0).any()

    def test_settle_never_exceeds_sta_critical_path(self, fresh_cells):
        critical = StaticTimingAnalyzer(_MAC, fresh_cells).critical_path_delay()
        rng = np.random.default_rng(3)
        simulator = BatchTimingSimulator(_MAC.netlist, fresh_cells, "settle")
        evaluation = simulator.propagate_batch(
            _lane_inputs(_MAC.netlist, rng, 120), _lane_inputs(_MAC.netlist, rng, 120)
        )
        assert (evaluation.worst_arrival_ps <= critical + 1e-9).all()

    def test_event_model_rejected(self, fresh_cells):
        with pytest.raises(ValueError, match="arrival_model"):
            BatchTimingSimulator(_MULT5.netlist, fresh_cells, "event")

    def test_lane_count_mismatch_rejected(self, fresh_cells):
        simulator = BatchTimingSimulator(_MULT5.netlist, fresh_cells)
        with pytest.raises(ValueError, match="lanes"):
            simulator.propagate_batch({"a": [1, 2], "b": [3, 4]}, {"a": [1], "b": [3]})

    def test_invalid_clock_period_rejected(self, fresh_cells):
        simulator = BatchTimingSimulator(_MULT5.netlist, fresh_cells)
        evaluation = simulator.propagate_batch({"a": [0], "b": [0]}, {"a": [3], "b": [3]})
        with pytest.raises(ValueError):
            evaluation.captured_outputs(0.0)


# --------------------------------------------------- error-model equivalence
class TestErrorModelEngines:
    @pytest.mark.parametrize("model", BATCH_ARRIVAL_MODELS)
    def test_batch_and_scalar_statistics_are_identical(self, model):
        unit = build_multiplier(6, "array")
        library = _LIBRARIES.library(50.0)
        period = StaticTimingAnalyzer(unit, _LIBRARIES.fresh).critical_path_delay()
        kwargs = dict(
            num_samples=150,
            rng=0,
            effective_output_width=12,
            arrival_model=model,
        )
        scalar = characterize_timing_errors(
            unit, library, period, backend="scalar", **kwargs
        )
        # A batch size smaller than the sample count exercises chunking.
        batch = characterize_timing_errors(
            unit, library, period, backend="batch", batch_size=64, **kwargs
        )
        assert scalar == batch
        assert batch.error_rate > 0.0

    def test_auto_engine_picks_batch_for_levelized_models(self):
        unit = build_multiplier(4, "array")
        period = StaticTimingAnalyzer(unit, _LIBRARIES.fresh).critical_path_delay()
        stats = characterize_timing_errors(
            unit,
            _LIBRARIES.fresh,
            period,
            num_samples=16,
            rng=0,
            arrival_model="settle",
        )
        assert stats.error_rate == 0.0  # fresh circuit at the fresh period

    def test_engine_validation(self):
        unit = build_multiplier(4, "array")
        library = _LIBRARIES.fresh
        with pytest.raises(ValueError, match="engine"):
            characterize_timing_errors(unit, library, 100.0, num_samples=4, backend="gpu")
        with pytest.raises(ValueError, match="arrival_model"):
            characterize_timing_errors(
                unit, library, 100.0, num_samples=4, arrival_model="exact"
            )
        with pytest.raises(ValueError, match="batched engine"):
            characterize_timing_errors(
                unit, library, 100.0, num_samples=4, arrival_model="event", backend="batch"
            )
        with pytest.raises(ValueError, match="batch_size"):
            characterize_timing_errors(
                unit,
                library,
                100.0,
                num_samples=4,
                arrival_model="settle",
                batch_size=0,
            )
