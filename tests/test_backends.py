"""Tests of the pluggable simulation-backend architecture.

Three invariants are enforced:

* **registry** — the four built-in backends resolve by name (and alias),
  validation lives in one place, and ``"auto"`` selects by arrival model
  and batch width;
* **equivalence** — scalar, bigint and ndarray backends produce bit-identical
  captured outputs, violation masks and Monte-Carlo error counters across
  random netlists, lane counts and clock periods (property-based);
* **orchestration** — the backend choice survives pickling into sweep
  worker processes, and the corner-batched STA pass reproduces the scalar
  per-corner delays bit-identically.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aging.cell_library import AgingAwareLibrarySet
from repro.circuits.backends import (
    EVENT_BACKEND_MIN_LANES,
    LANE_BACKEND_MIN_LANES,
    LaneTimingSimulator,
    LevelizedGraph,
    SimulationBackend,
    backend_names,
    corner_case_delays,
    get_backend,
    levelized_graph,
    resolve_backend,
)
from repro.circuits.mac import build_mac, build_multiplier
from repro.circuits.simulator import (
    BATCH_ARRIVAL_MODELS,
    BatchTimingSimulator,
    TimingSimulator,
)
from repro.timing.error_model import characterize_timing_errors, sweep_timing_errors
from repro.timing.sta import StaticTimingAnalyzer

from tests.test_batch_simulator import random_netlists

_MULT5 = build_multiplier(5, "array")
_MAC = build_mac(multiplier_width=5, accumulator_width=12)
_LIBRARIES = AgingAwareLibrarySet.generate((0.0, 20.0, 50.0))

ALL_BACKENDS = ("scalar", "bigint", "ndarray")
BATCHED_BACKENDS = ("bigint", "ndarray")


def _lane_inputs(netlist, rng, lanes):
    return {
        bus: [int(rng.integers(0, 1 << len(nets))) for _ in range(lanes)]
        for bus, nets in netlist.input_buses.items()
    }


def _lane_slice(batch, lane):
    return {bus: values[lane] for bus, values in batch.items()}


# ---------------------------------------------------------------- registry
class TestRegistry:
    def test_builtin_backends_registered(self):
        assert backend_names() == ("auto", "bigint", "event", "ndarray", "scalar")
        for name in ALL_BACKENDS + ("event",):
            backend = get_backend(name)
            assert isinstance(backend, SimulationBackend)
            assert backend.name == name

    def test_aliases(self):
        assert get_backend("batch") is get_backend("bigint")
        assert get_backend("lane") is get_backend("numpy")
        assert get_backend("lane") is get_backend("ndarray")
        assert get_backend("wheel") is get_backend("event")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            get_backend("gpu")

    def test_auto_selects_scalar_for_narrow_event_batches(self):
        backend, _ = resolve_backend("auto", "event", EVENT_BACKEND_MIN_LANES - 1)
        assert backend.name == "scalar"

    def test_auto_selects_wheel_for_wide_event_batches(self):
        for batch_size in (EVENT_BACKEND_MIN_LANES, 10_000):
            backend, _ = resolve_backend("auto", "event", batch_size)
            assert backend.name == "event"

    def test_auto_selects_bigint_for_narrow_batches(self):
        backend, batch_size = resolve_backend("auto", "settle", None)
        assert backend.name == "bigint"
        assert batch_size == 256
        backend, _ = resolve_backend("auto", "transition", LANE_BACKEND_MIN_LANES - 1)
        assert backend.name == "bigint"

    def test_auto_selects_ndarray_for_wide_batches(self):
        for model in BATCH_ARRIVAL_MODELS:
            backend, _ = resolve_backend("auto", model, LANE_BACKEND_MIN_LANES)
            assert backend.name == "ndarray"

    def test_batched_backends_reject_event_model(self):
        for name in BATCHED_BACKENDS:
            with pytest.raises(ValueError, match="batched engine"):
                resolve_backend(name, "event", 64)

    def test_invalid_arrival_model_and_batch_size(self):
        with pytest.raises(ValueError, match="arrival_model"):
            resolve_backend("auto", "exact", 64)
        with pytest.raises(ValueError, match="batch_size"):
            resolve_backend("auto", "settle", 0)

    def test_backends_pickle_by_identity(self):
        for name in ALL_BACKENDS:
            backend = get_backend(name)
            clone = pickle.loads(pickle.dumps(backend))
            assert clone.name == backend.name


# ------------------------------------------------------- simulator identity
class TestLaneSimulatorEquivalence:
    """The ndarray lane simulator against the scalar/bigint references."""

    @pytest.mark.parametrize("model", BATCH_ARRIVAL_MODELS)
    @pytest.mark.parametrize("level", [0.0, 50.0])
    def test_matches_bigint_on_mac(self, model, level):
        rng = np.random.default_rng(11)
        library = _LIBRARIES.library(level)
        lanes = 130  # two full words + a partial tail word
        previous = _lane_inputs(_MAC.netlist, rng, lanes)
        current = _lane_inputs(_MAC.netlist, rng, lanes)
        lane_eval = LaneTimingSimulator(_MAC.netlist, library, model).propagate_batch(
            previous, current
        )
        big_eval = BatchTimingSimulator(_MAC.netlist, library, model).propagate_batch(
            previous, current
        )
        assert lane_eval.lanes == big_eval.lanes
        assert np.array_equal(lane_eval.worst_arrival_ps, big_eval.worst_arrival_ps)
        assert lane_eval.final_outputs() == big_eval.final_outputs()
        assert lane_eval.previous_outputs() == big_eval.previous_outputs()
        clock = float(np.quantile(big_eval.worst_arrival_ps, 0.5)) or 10.0
        assert lane_eval.captured_outputs(clock) == big_eval.captured_outputs(clock)
        assert np.array_equal(
            lane_eval.has_timing_violation(clock), big_eval.has_timing_violation(clock)
        )
        for bus, arrivals in big_eval.output_arrivals_ps.items():
            assert np.array_equal(lane_eval.output_arrivals_ps[bus], arrivals)

    @given(
        netlist=random_netlists(),
        seed=st.integers(0, 2**32 - 1),
        lanes=st.integers(1, 90),
        model=st.sampled_from(BATCH_ARRIVAL_MODELS),
        level=st.sampled_from([0.0, 20.0, 50.0]),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_on_random_netlists(self, netlist, seed, lanes, model, level):
        rng = np.random.default_rng(seed)
        library = _LIBRARIES.library(level)
        previous = _lane_inputs(netlist, rng, lanes)
        current = _lane_inputs(netlist, rng, lanes)
        evaluation = LaneTimingSimulator(netlist, library, model).propagate_batch(
            previous, current
        )
        scalar_sim = TimingSimulator(netlist, library, arrival_model=model)
        finals = evaluation.final_outputs()
        clock = max(float(evaluation.worst_arrival_ps.max()) / 2, 1e-3)
        captured = evaluation.captured_outputs(clock)
        violations = evaluation.has_timing_violation(clock)
        for lane in range(lanes):
            reference = scalar_sim.propagate(
                _lane_slice(previous, lane), _lane_slice(current, lane)
            )
            assert _lane_slice(finals, lane) == reference.final_outputs
            assert _lane_slice(captured, lane) == reference.captured_outputs(clock)
            assert evaluation.worst_arrival_ps[lane] == reference.worst_arrival_ps
            assert bool(violations[lane]) == reference.has_timing_violation(clock)

    def test_event_model_rejected(self):
        with pytest.raises(ValueError, match="arrival_model"):
            LaneTimingSimulator(_MULT5.netlist, _LIBRARIES.fresh, "event")

    def test_lane_count_mismatch_rejected(self):
        simulator = LaneTimingSimulator(_MULT5.netlist, _LIBRARIES.fresh)
        with pytest.raises(ValueError, match="lanes"):
            simulator.propagate_batch({"a": [1, 2], "b": [3, 4]}, {"a": [1], "b": [3]})

    def test_input_validation_matches_bigint_packing(self):
        simulator = LaneTimingSimulator(_MULT5.netlist, _LIBRARIES.fresh)
        with pytest.raises(KeyError):
            simulator.propagate_batch({"a": [1]}, {"a": [1]})
        with pytest.raises(ValueError):
            simulator.propagate_batch({"a": [], "b": []}, {"a": [], "b": []})
        with pytest.raises(ValueError):
            simulator.propagate_batch({"a": [32], "b": [0]}, {"a": [0], "b": [0]})

    def test_levelized_graph_is_cached_per_netlist(self):
        assert levelized_graph(_MULT5.netlist) is levelized_graph(_MULT5.netlist)

    def test_levelized_graph_cache_releases_dead_netlists(self):
        import gc
        import weakref

        from repro.circuits.mac import build_multiplier

        netlist = build_multiplier(3, "array").netlist
        levelized_graph(netlist)
        tracker = weakref.ref(netlist)
        del netlist
        gc.collect()
        assert tracker() is None  # the graph cache must not pin the netlist

    def test_wide_output_bus_counters_are_exact(self):
        # Output buses past 62 bits exceed int64 bit weights; both batched
        # backends must fall back to exact Python-int accumulation.
        from repro.circuits.mac import ArithmeticUnit
        from repro.circuits.netlist import Netlist

        netlist = Netlist("wide")
        ins = netlist.add_input_bus("in", 8)
        outs = []
        for i in range(70):
            outs.append(netlist.add_gate("BUF", [ins[i % 8]]))
        netlist.add_output_bus("out", outs)
        unit = ArithmeticUnit(
            netlist=netlist, input_widths={"in": 8}, output_widths={"out": 70}
        )
        library = _LIBRARIES.library(50.0)
        period = StaticTimingAnalyzer(netlist, library).critical_path_delay() / 2
        results = [
            characterize_timing_errors(
                unit, library, period, num_samples=30, rng=3,
                arrival_model="settle", backend=name, batch_size=8, msb_count=1,
            )
            for name in ALL_BACKENDS
        ]
        assert results[0] == results[1] == results[2]
        assert results[0].error_rate > 0.0


# ---------------------------------------------------- violation-type contract
class TestViolationTypes:
    """has_timing_violation: scalar -> bool, batched -> ndarray[bool]."""

    def test_scalar_returns_plain_bool(self):
        simulator = TimingSimulator(_MULT5.netlist, _LIBRARIES.library(50.0), "settle")
        evaluation = simulator.propagate({"a": 0, "b": 0}, {"a": 31, "b": 31})
        for clock in (1e-6, 1e6):
            result = evaluation.has_timing_violation(clock)
            assert type(result) is bool

    @pytest.mark.parametrize("factory", [BatchTimingSimulator, LaneTimingSimulator])
    def test_batched_return_boolean_ndarray(self, factory):
        simulator = factory(_MULT5.netlist, _LIBRARIES.library(50.0), "settle")
        evaluation = simulator.propagate_batch(
            {"a": [0, 3], "b": [0, 5]}, {"a": [31, 3], "b": [31, 5]}
        )
        for clock in (1e-6, 1e6):
            result = evaluation.has_timing_violation(clock)
            assert isinstance(result, np.ndarray)
            assert result.dtype == np.dtype(bool)
            assert result.shape == (2,)


# ------------------------------------------------------ error-model identity
class TestErrorModelBackendEquivalence:
    @pytest.mark.parametrize("model", BATCH_ARRIVAL_MODELS)
    def test_all_backends_identical_statistics(self, model):
        unit = build_multiplier(6, "array")
        library = _LIBRARIES.library(50.0)
        period = StaticTimingAnalyzer(unit, _LIBRARIES.fresh).critical_path_delay()
        kwargs = dict(
            num_samples=150,
            rng=0,
            effective_output_width=12,
            arrival_model=model,
        )
        results = {
            name: characterize_timing_errors(
                unit, library, period, backend=name, batch_size=64, **kwargs
            )
            for name in ALL_BACKENDS
        }
        assert results["scalar"] == results["bigint"] == results["ndarray"]
        assert results["scalar"].error_rate > 0.0

    @given(
        netlist=random_netlists(),
        seed=st.integers(0, 2**32 - 1),
        samples=st.integers(1, 40),
        batch_size=st.sampled_from([1, 7, 64, 100]),
        model=st.sampled_from(BATCH_ARRIVAL_MODELS),
        clock_scale=st.floats(0.2, 1.2),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_identical_counters_on_random_netlists(
        self, netlist, seed, samples, batch_size, model, clock_scale
    ):
        from repro.circuits.mac import ArithmeticUnit

        unit = ArithmeticUnit(
            netlist=netlist,
            input_widths={name: len(nets) for name, nets in netlist.input_buses.items()},
            output_widths={name: len(nets) for name, nets in netlist.output_buses.items()},
        )
        library = _LIBRARIES.library(50.0)
        period = max(
            StaticTimingAnalyzer(netlist, library).critical_path_delay() * clock_scale,
            1e-3,
        )
        results = [
            characterize_timing_errors(
                unit,
                library,
                period,
                num_samples=samples,
                rng=seed,
                arrival_model=model,
                backend=name,
                batch_size=batch_size,
                msb_count=1,
            )
            for name in ALL_BACKENDS
        ]
        assert results[0] == results[1] == results[2]

    def test_sweep_backend_choice_survives_worker_pickling(self):
        unit = build_multiplier(4, "array")
        kwargs = dict(
            levels_mv=(0.0, 50.0),
            num_samples=40,
            rng=7,
            arrival_model="settle",
            batch_size=16,
            samples_per_shard=10,
        )
        serial = {
            name: sweep_timing_errors(unit, _LIBRARIES, backend=name, workers=0, **kwargs)
            for name in ALL_BACKENDS
        }
        assert serial["scalar"] == serial["bigint"] == serial["ndarray"]
        parallel = sweep_timing_errors(
            unit, _LIBRARIES, backend="ndarray", workers=2, **kwargs
        )
        assert parallel == serial["ndarray"]


# ----------------------------------------------------------- corner STA pass
class TestCornerStaPass:
    def test_reproduces_scalar_case_analysis_bit_identically(self):
        from repro.core.compression import enumerate_compressions
        from repro.core.padding import Padding, mac_case_analysis

        mac = build_mac()
        library = _LIBRARIES.library(50.0)
        analyzer = StaticTimingAnalyzer(mac, library)
        cases = [
            mac_case_analysis(
                choice.alpha, choice.beta, choice.padding,
                multiplier_width=8, accumulator_width=22,
            )
            for choice in enumerate_compressions(4, 4, (Padding.MSB, Padding.LSB))
        ]
        batched = analyzer.case_analysis_delays(cases)
        scalar = [analyzer.critical_path_delay(case) for case in cases]
        assert batched == scalar  # bit-identical floats, not approx

    def test_shared_pass_counts_once(self):
        analyzer = StaticTimingAnalyzer(_MAC, _LIBRARIES.fresh)
        before = analyzer.levelized_passes
        analyzer.case_analysis_delays([None, {"a[0]": 0}, {"a[1]": 1}])
        assert analyzer.levelized_passes == before + 1

    def test_corner_pass_direct_api(self):
        netlist = _MULT5.netlist
        library = _LIBRARIES.library(20.0)
        delays = {
            gate: library.delay_ps(gate.cell_name, fanout=gate.output.fanout)
            for gate in netlist.topological_gates()
        }
        constants = [{}, {netlist.nets["a[0]"]: 0, netlist.nets["a[1]"]: 0}]
        from repro.circuits.constants import propagate_constants

        resolved = [propagate_constants(netlist, c) for c in constants]
        delays_out = corner_case_delays(netlist, delays, resolved)
        assert len(delays_out) == 2
        assert delays_out[0] >= delays_out[1] > 0.0

    def test_empty_corner_list(self):
        analyzer = StaticTimingAnalyzer(_MAC, _LIBRARIES.fresh)
        assert analyzer.case_analysis_delays([]) == []


# ------------------------------------------------------- level-ordered layout
class TestLevelOrderedLayout:
    """The level-ordered net numbering against the creation-order baseline."""

    def test_row_permutation_is_a_bijection(self):
        for netlist in (_MULT5.netlist, _MAC.netlist):
            graph = levelized_graph(netlist, "level")
            assert np.array_equal(
                np.sort(graph.row_permutation), np.arange(graph.num_nets)
            )
            # Sources keep creation order at the front, so bus packing can
            # still write whole input buses as slices.
            assert graph.num_source_rows <= graph.num_nets

    @given(netlist=random_netlists())
    @settings(max_examples=30, deadline=None)
    def test_row_permutation_is_a_bijection_on_random_netlists(self, netlist):
        graph = LevelizedGraph(netlist, "level")
        assert np.array_equal(np.sort(graph.row_permutation), np.arange(graph.num_nets))

    def test_bus_packing_round_trips_through_the_permutation(self):
        from repro.utils.bitops import lane_array_to_bits

        rng = np.random.default_rng(5)
        lanes = 70
        inputs = _lane_inputs(_MAC.netlist, rng, lanes)
        level = levelized_graph(_MAC.netlist, "level")
        creation = levelized_graph(_MAC.netlist, "creation")
        packed_level, lanes_out = level.pack_inputs(inputs)
        packed_creation, _ = creation.pack_inputs(inputs)
        assert lanes_out == lanes
        # The permuted layout holds the same rows, just renumbered.
        assert np.array_equal(packed_level[level.row_permutation], packed_creation)
        # And each bus unpacks to exactly the ints that were packed.
        for bus, rows in level.input_bus_rows.items():
            bits = lane_array_to_bits(packed_level[rows], lanes)
            recovered = [
                int(sum(1 << bit for bit in range(bits.shape[0]) if bits[bit, lane]))
                for lane in range(lanes)
            ]
            assert recovered == list(inputs[bus])

    @pytest.mark.parametrize("model", BATCH_ARRIVAL_MODELS)
    def test_layouts_bit_identical_across_scenario_families(self, model):
        from repro.aging.scenarios import (
            MissionProfile,
            PerCellTypeAging,
            UniformAging,
            VariationAging,
        )

        base = _LIBRARIES.fresh
        scenarios = [
            UniformAging(30.0, library=base),
            MissionProfile(years=5.0, temperature_c=85.0, duty_cycle=0.8, library=base),
            PerCellTypeAging(
                levels_mv={"NAND2": 40.0, "INV": 10.0}, default_mv=20.0, library=base
            ),
            VariationAging(25.0, 6.0, seed=11, library=base),
        ]
        rng = np.random.default_rng(23)
        lanes = 70
        previous = _lane_inputs(_MAC.netlist, rng, lanes)
        current = _lane_inputs(_MAC.netlist, rng, lanes)
        for scenario in scenarios:
            evals = {
                layout: LaneTimingSimulator(
                    _MAC.netlist, scenario, model, layout=layout
                ).propagate_batch(previous, current)
                for layout in ("level", "creation")
            }
            bigint = BatchTimingSimulator(_MAC.netlist, scenario, model).propagate_batch(
                previous, current
            )
            reference = evals["creation"]
            clock = float(np.quantile(reference.worst_arrival_ps, 0.5)) or 10.0
            for other in (evals["level"], bigint):
                assert np.array_equal(
                    other.worst_arrival_ps, reference.worst_arrival_ps
                )
                assert other.final_outputs() == reference.final_outputs()
                assert other.captured_outputs(clock) == reference.captured_outputs(clock)
                for bus, arrivals in reference.output_arrivals_ps.items():
                    assert np.array_equal(other.output_arrivals_ps[bus], arrivals)
            # Spot-check a few lanes against the scalar simulator too, so the
            # chain creation == level == bigint == scalar closes per family.
            scalar_sim = TimingSimulator(_MAC.netlist, scenario, arrival_model=model)
            finals = reference.final_outputs()
            for lane in (0, lanes // 2, lanes - 1):
                scalar_eval = scalar_sim.propagate(
                    _lane_slice(previous, lane), _lane_slice(current, lane)
                )
                assert _lane_slice(finals, lane) == scalar_eval.final_outputs
                assert (
                    reference.worst_arrival_ps[lane] == scalar_eval.worst_arrival_ps
                )

    def test_gather_locality_improves_under_level_layout(self):
        level = levelized_graph(_MAC.netlist, "level").gather_locality()
        creation = levelized_graph(_MAC.netlist, "creation").gather_locality()
        assert level["contiguous_output_levels"] == 1.0
        assert level["contiguous_input_buses"] == 1.0
        assert (
            level["sequential_read_fraction"] > creation["sequential_read_fraction"]
        )

    def test_max_plus_pass_counter_counts_whole_batches(self):
        graph = levelized_graph(_MAC.netlist, "level")
        library = _LIBRARIES.library(20.0)
        delays = {
            gate: library.delay_ps(gate.cell_name, fanout=gate.output.fanout)
            for gate in _MAC.netlist.topological_gates()
        }
        from repro.circuits.constants import propagate_constants

        constants = propagate_constants(_MAC.netlist)
        before = graph.max_plus_passes
        corner_case_delays(_MAC.netlist, delays, [constants] * 5)
        assert graph.max_plus_passes == before + 1  # 5 corners, one traversal


# ------------------------------------------------------------ graph memoising
class TestLevelizedGraphCache:
    def test_cache_hit_counter(self):
        from repro.circuits.backends import levelized_graph_cache_stats

        netlist = build_multiplier(3, "array").netlist
        before = levelized_graph_cache_stats()
        first = levelized_graph(netlist)
        warm = levelized_graph_cache_stats()
        assert warm["misses"] == before["misses"] + 1
        again = levelized_graph(netlist)
        after = levelized_graph_cache_stats()
        assert again is first
        assert after["hits"] == warm["hits"] + 1
        assert after["misses"] == warm["misses"]

    def test_layouts_cached_independently(self):
        netlist = build_multiplier(3, "array").netlist
        level = levelized_graph(netlist, "level")
        creation = levelized_graph(netlist, "creation")
        assert level is not creation
        assert levelized_graph(netlist, "level") is level
        assert levelized_graph(netlist, "creation") is creation

    def test_simulators_share_the_memoised_graph(self):
        netlist = build_multiplier(3, "array").netlist
        sim_a = LaneTimingSimulator(netlist, _LIBRARIES.fresh, "settle")
        sim_b = LaneTimingSimulator(netlist, _LIBRARIES.fresh, "transition")
        assert sim_a.graph is sim_b.graph
