"""Functional correctness of the generated adders, multipliers and MACs."""

import numpy as np
import pytest

from repro.circuits.adders import carry_select_adder, full_adder, half_adder, ripple_carry_adder
from repro.circuits.mac import ArithmeticUnit, build_adder, build_mac, build_multiplier
from repro.circuits.netlist import Netlist
from repro.circuits.simulator import LogicSimulator


def _evaluate_two_operand(netlist: Netlist, a: int, b: int) -> int:
    return LogicSimulator(netlist).evaluate({"a": a, "b": b})["out"]


class TestAdderPrimitives:
    def test_half_adder_truth_table(self):
        for a_bit in (0, 1):
            for b_bit in (0, 1):
                netlist = Netlist("ha")
                a = netlist.add_input_bus("a", 1)
                b = netlist.add_input_bus("b", 1)
                s, c = half_adder(netlist, a[0], b[0])
                netlist.add_output_bus("out", [s, c])
                result = LogicSimulator(netlist).evaluate({"a": a_bit, "b": b_bit})["out"]
                assert result == a_bit + b_bit

    def test_full_adder_truth_table(self):
        for value in range(8):
            a_bit, b_bit, c_bit = value & 1, (value >> 1) & 1, (value >> 2) & 1
            netlist = Netlist("fa")
            a = netlist.add_input_bus("a", 1)
            b = netlist.add_input_bus("b", 1)
            c = netlist.add_input_bus("c", 1)
            s, carry = full_adder(netlist, a[0], b[0], c[0])
            netlist.add_output_bus("out", [s, carry])
            result = LogicSimulator(netlist).evaluate({"a": a_bit, "b": b_bit, "c": c_bit})["out"]
            assert result == a_bit + b_bit + c_bit


class TestRippleCarryAdder:
    def test_exhaustive_4_bit(self):
        unit = build_adder(4, "ripple")
        simulator = LogicSimulator(unit.netlist)
        for a in range(16):
            for b in range(16):
                assert simulator.evaluate({"a": a, "b": b})["out"] == a + b

    def test_mixed_width_operands(self):
        netlist = Netlist("mixed")
        a = netlist.add_input_bus("a", 6)
        b = netlist.add_input_bus("b", 3)
        sums, carry = ripple_carry_adder(netlist, a, b)
        netlist.add_output_bus("out", list(sums) + [carry])
        simulator = LogicSimulator(netlist)
        for a_val, b_val in [(63, 7), (40, 5), (0, 0), (17, 6)]:
            assert simulator.evaluate({"a": a_val, "b": b_val})["out"] == a_val + b_val

    def test_empty_operand_rejected(self):
        netlist = Netlist("bad")
        a = netlist.add_input_bus("a", 2)
        with pytest.raises(ValueError):
            ripple_carry_adder(netlist, a, [])


class TestCarrySelectAdder:
    def test_exhaustive_5_bit(self):
        netlist = Netlist("csa")
        a = netlist.add_input_bus("a", 5)
        b = netlist.add_input_bus("b", 5)
        sums, carry = carry_select_adder(netlist, a, b, block_size=2)
        netlist.add_output_bus("out", list(sums) + [carry])
        simulator = LogicSimulator(netlist)
        for a_val in range(0, 32, 3):
            for b_val in range(0, 32, 5):
                assert simulator.evaluate({"a": a_val, "b": b_val})["out"] == a_val + b_val

    def test_invalid_block_size(self):
        netlist = Netlist("bad")
        a = netlist.add_input_bus("a", 4)
        b = netlist.add_input_bus("b", 4)
        with pytest.raises(ValueError):
            carry_select_adder(netlist, a, b, block_size=0)

    def test_adder_architecture_delay_differs(self, fresh_cells):
        from repro.timing.sta import StaticTimingAnalyzer

        ripple = build_adder(16, "ripple")
        select = build_adder(16, "carry_select")
        ripple_delay = StaticTimingAnalyzer(ripple, fresh_cells).critical_path_delay()
        select_delay = StaticTimingAnalyzer(select, fresh_cells).critical_path_delay()
        assert select_delay < ripple_delay
        assert select.gate_count > ripple.gate_count


class TestMultipliers:
    @pytest.mark.parametrize("architecture", ["array", "wallace"])
    def test_exhaustive_4_bit(self, architecture):
        unit = build_multiplier(4, architecture)
        simulator = LogicSimulator(unit.netlist)
        for a in range(16):
            for b in range(16):
                assert simulator.evaluate({"a": a, "b": b})["out"] == a * b

    @pytest.mark.parametrize("architecture", ["array", "wallace"])
    def test_random_8_bit(self, architecture, rng):
        unit = build_multiplier(8, architecture)
        simulator = LogicSimulator(unit.netlist)
        for _ in range(60):
            a = int(rng.integers(0, 256))
            b = int(rng.integers(0, 256))
            assert simulator.evaluate({"a": a, "b": b})["out"] == a * b

    def test_output_width(self):
        unit = build_multiplier(8, "array")
        assert unit.output_widths["out"] == 16

    def test_unknown_architecture(self):
        with pytest.raises(ValueError):
            build_multiplier(8, "booth")


class TestMacUnit:
    def test_small_mac_functional(self, small_mac, rng):
        simulator = LogicSimulator(small_mac.netlist)
        for _ in range(80):
            a = int(rng.integers(0, 16))
            b = int(rng.integers(0, 16))
            c = int(rng.integers(0, 1 << 10))
            assert simulator.evaluate({"a": a, "b": b, "c": c})["out"] == a * b + c

    def test_paper_mac_functional(self, paper_mac, rng):
        simulator = LogicSimulator(paper_mac.netlist)
        for _ in range(40):
            a = int(rng.integers(0, 256))
            b = int(rng.integers(0, 256))
            c = int(rng.integers(0, 1 << 22))
            assert simulator.evaluate({"a": a, "b": b, "c": c})["out"] == a * b + c

    def test_compute_helper(self, small_mac):
        assert small_mac.compute(a=3, b=5, c=100)["out"] == 115

    def test_port_description(self, paper_mac):
        assert paper_mac.input_widths == {"a": 8, "b": 8, "c": 22}
        assert paper_mac.output_widths["out"] == 23
        assert paper_mac.gate_count > 300

    def test_stats_report(self, small_mac):
        stats = small_mac.stats()
        assert stats["gates"] == small_mac.gate_count
        assert "description" in stats

    def test_accumulator_narrower_than_product_rejected(self):
        with pytest.raises(ValueError):
            build_mac(multiplier_width=8, accumulator_width=10)

    def test_unknown_architectures_rejected(self):
        with pytest.raises(ValueError):
            build_mac(multiplier="booth")
        with pytest.raises(ValueError):
            build_mac(adder="kogge_stone")

    def test_arithmetic_unit_is_dataclass_like(self, small_mac):
        assert isinstance(small_mac, ArithmeticUnit)
        assert small_mac.name.startswith("mac")
