"""Tests of the systolic-array NPU performance model."""

import pytest

from repro.npu.performance import NpuPerformanceModel
from repro.npu.systolic import LayerWorkload, SystolicArray, model_workloads
from tests.conftest import build_tiny_model


class TestLayerWorkload:
    def test_mac_count(self):
        workload = LayerWorkload(name="conv", rows=100, inner=27, cols=16)
        assert workload.macs == 100 * 27 * 16


class TestModelWorkloads:
    def test_every_conv_and_dense_is_captured(self, tiny_dataset):
        model = build_tiny_model(tiny_dataset.num_classes, tiny_dataset.image_size)
        workloads = model_workloads(model, tiny_dataset.input_shape)
        conv_dense_count = sum(
            1 for _, layer in model.named_layers() if type(layer).__name__ in ("Conv2D", "Dense")
        )
        assert len(workloads) == conv_dense_count
        assert all(workload.macs > 0 for workload in workloads)

    def test_zoo_models_have_increasing_work_with_depth(self):
        from repro.nn.zoo import build_model

        shallow = build_model("resnet50", num_classes=4, image_size=16)
        deep = build_model("resnet152", num_classes=4, image_size=16)
        shallow_macs = sum(w.macs for w in model_workloads(shallow, (3, 16, 16)))
        deep_macs = sum(w.macs for w in model_workloads(deep, (3, 16, 16)))
        assert deep_macs > shallow_macs


class TestSystolicArray:
    def test_default_matches_edge_tpu(self):
        array = SystolicArray()
        assert array.rows == 64 and array.cols == 64
        assert array.num_macs == 4096

    def test_cycles_scale_with_workload(self):
        array = SystolicArray(8, 8)
        small = LayerWorkload("l", rows=16, inner=8, cols=8)
        large = LayerWorkload("l", rows=16, inner=64, cols=64)
        assert array.layer_cycles(large) > array.layer_cycles(small)

    def test_utilization_bounded(self):
        array = SystolicArray(8, 8)
        workloads = [LayerWorkload("l", rows=64, inner=16, cols=16)]
        utilization = array.utilization(workloads)
        assert 0.0 < utilization <= 1.0

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            SystolicArray(0, 4)


class TestNpuPerformanceModel:
    def test_latency_and_throughput(self):
        model = NpuPerformanceModel(SystolicArray(8, 8))
        workloads = [LayerWorkload("l", rows=32, inner=16, cols=16)]
        latency = model.inference_latency(workloads, clock_period_ps=1000.0)
        assert latency.latency_us > 0
        assert latency.throughput_inferences_per_second > 0

    def test_speedup_equals_period_ratio(self):
        model = NpuPerformanceModel(SystolicArray(8, 8))
        workloads = [LayerWorkload("l", rows=32, inner=16, cols=16)]
        assert model.speedup(workloads, baseline_period_ps=1230.0, optimized_period_ps=1000.0) == pytest.approx(1.23)

    def test_guardband_loss(self):
        assert NpuPerformanceModel.guardband_performance_loss_percent(0.23) == pytest.approx(23.0)
        with pytest.raises(ValueError):
            NpuPerformanceModel.guardband_performance_loss_percent(-0.1)

    def test_invalid_period(self):
        model = NpuPerformanceModel()
        with pytest.raises(ValueError):
            model.inference_latency([], clock_period_ps=0.0)
