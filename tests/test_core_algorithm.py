"""Tests of Algorithm 1, the guardband analysis and the lifetime pipeline.

These tests exercise the full device-to-system flow on the paper's MAC but
with a reduced compression search space and the tiny model/dataset, so they
stay fast while covering every decision the algorithm makes.
"""

import pytest

from repro.aging.bti import AgingTimeline
from repro.core.algorithm import AgingAwareQuantizer
from repro.core.compression import CompressionChoice
from repro.core.guardband import analyze_guardband, baseline_delay_trajectory, compensated_delay_trajectory
from repro.core.pipeline import DeviceToSystemPipeline
from repro.core.timing_analysis import CompressionTimingAnalyzer
from repro.quantization.registry import available_methods


@pytest.fixture(scope="module")
def timing_analyzer(paper_mac, library_set):
    return CompressionTimingAnalyzer(paper_mac, library_set)


@pytest.fixture(scope="module")
def quantizer(paper_mac, library_set):
    return AgingAwareQuantizer(
        mac=paper_mac,
        library_set=library_set,
        methods=available_methods(["M2", "M4"]),
        max_alpha=4,
        max_beta=4,
    )


class TestCompressionTimingAnalyzer:
    def test_fresh_period_is_uncompressed_delay(self, timing_analyzer):
        assert timing_analyzer.fresh_period_ps() == pytest.approx(
            timing_analyzer.delay_ps(0.0, None)
        )

    def test_compression_reduces_delay_at_every_level(self, timing_analyzer):
        for level in (0.0, 30.0, 50.0):
            uncompressed = timing_analyzer.delay_ps(level, None)
            compressed = timing_analyzer.delay_ps(level, CompressionChoice(4, 4))
            assert compressed < uncompressed

    def test_feasible_set_shrinks_with_aging(self, timing_analyzer):
        mild = timing_analyzer.feasible_compressions(10.0, max_alpha=3, max_beta=3)
        severe = timing_analyzer.feasible_compressions(50.0, max_alpha=3, max_beta=3)
        assert len(severe) <= len(mild)
        assert all(entry.meets_timing for entry in mild + severe)

    def test_uncompressed_feasible_only_when_fresh(self, timing_analyzer):
        fresh = timing_analyzer.feasible_compressions(0.0, max_alpha=1, max_beta=1)
        aged = timing_analyzer.feasible_compressions(50.0, max_alpha=4, max_beta=4)
        assert any(entry.choice.is_uncompressed for entry in fresh)
        assert not any(entry.choice.is_uncompressed for entry in aged)

    def test_timing_record_fields(self, timing_analyzer):
        record = timing_analyzer.timing(20.0, CompressionChoice(2, 2))
        assert record.delta_vth_mv == 20.0
        assert record.normalized_delay == pytest.approx(record.delay_ps / record.target_period_ps)
        assert record.meets_timing == (record.slack_ps >= 0)


class TestAlgorithmSelection:
    def test_selected_compression_meets_fresh_clock(self, quantizer):
        for level in (10.0, 30.0, 50.0):
            timing = quantizer.select_compression(level)
            assert timing.meets_timing
            assert timing.normalized_delay <= 1.0 + 1e-9

    def test_compression_severity_grows_with_aging(self, quantizer):
        mild = quantizer.select_compression(10.0).choice
        severe = quantizer.select_compression(50.0).choice
        assert severe.surrogate >= mild.surrogate

    def test_fresh_level_needs_no_compression(self, quantizer):
        assert quantizer.select_compression(0.0).choice.is_uncompressed

    def test_method_search_returns_best(self, quantizer, tiny_model, tiny_calibration, tiny_dataset):
        compression = CompressionChoice(2, 2)
        selected, evaluation, per_method, satisfied = quantizer.quantize_model(
            tiny_model, compression, tiny_calibration, tiny_dataset.x_test, tiny_dataset.y_test
        )
        assert selected in per_method
        assert satisfied is True
        assert evaluation.accuracy_loss_percent == min(
            entry.accuracy_loss_percent for entry in per_method.values()
        )

    def test_threshold_short_circuits_search(self, quantizer, tiny_model, tiny_calibration, tiny_dataset):
        compression = CompressionChoice(0, 0)
        selected, _, per_method, satisfied = quantizer.quantize_model(
            tiny_model,
            compression,
            tiny_calibration,
            tiny_dataset.x_test,
            tiny_dataset.y_test,
            accuracy_loss_threshold_percent=100.0,
        )
        assert satisfied is True
        assert len(per_method) == 1  # first method already met the generous threshold
        assert selected == list(per_method)[0]

    def test_run_produces_complete_result(self, quantizer, tiny_model, tiny_calibration, tiny_dataset):
        result = quantizer.run(
            tiny_model, 30.0, tiny_calibration, tiny_dataset.x_test, tiny_dataset.y_test
        )
        assert result.delta_vth_mv == 30.0
        assert result.compression == result.timing.choice
        assert result.selected_method in result.per_method
        assert result.accuracy_loss_percent == result.evaluation.accuracy_loss_percent

    def test_empty_method_library_rejected(self, paper_mac, library_set):
        with pytest.raises(ValueError):
            AgingAwareQuantizer(mac=paper_mac, library_set=library_set, methods=[])


class TestGuardband:
    def test_guardband_matches_delay_model(self, paper_mac, library_set):
        analysis = analyze_guardband(paper_mac, library_set)
        expected = library_set.library(50.0).delay_degradation_factor - 1.0
        assert analysis.guardband_fraction == pytest.approx(expected, rel=1e-9)
        assert analysis.performance_gain_percent == pytest.approx(expected * 100.0)

    def test_trajectories(self, timing_analyzer):
        baseline = baseline_delay_trajectory(timing_analyzer, (0.0, 30.0, 50.0))
        assert [entry[0] for entry in baseline] == [0.0, 30.0, 50.0]
        assert baseline[0][1] == pytest.approx(1.0)
        assert baseline[-1][1] > 1.2

        from repro.core.padding import Padding

        selections = {
            30.0: CompressionChoice(4, 4, Padding.LSB),
            50.0: CompressionChoice(4, 4, Padding.LSB),
        }
        ours = compensated_delay_trajectory(timing_analyzer, selections)
        by_level = dict(baseline)
        for level, normalized in ours:
            assert normalized < by_level[level]
        assert ours[-1][1] <= 1.0 + 1e-9


class TestPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self, paper_mac, library_set):
        return DeviceToSystemPipeline(
            mac=paper_mac,
            library_set=library_set,
            timeline=AgingTimeline(levels_mv=(0.0, 20.0, 50.0)),
            methods=available_methods(["M2", "M4"]),
            max_alpha=4,
            max_beta=4,
        )

    def test_plan_covers_every_level(self, pipeline):
        plans = pipeline.plan()
        assert [plan.delta_vth_mv for plan in plans] == [0.0, 20.0, 50.0]
        for plan in plans:
            assert plan.normalized_compensated_delay <= 1.0 + 1e-9
            assert plan.normalized_baseline_delay >= 1.0

    def test_plan_is_cached(self, pipeline):
        assert pipeline.plan_level(20.0) is pipeline.plan_level(20.0)

    def test_evaluate_network_over_lifetime(self, pipeline, tiny_model, tiny_calibration, tiny_dataset):
        results = pipeline.evaluate_network(
            tiny_model, tiny_calibration, tiny_dataset.x_test, tiny_dataset.y_test
        )
        assert [result.delta_vth_mv for result in results] == [20.0, 50.0]
        for result in results:
            assert result.timing.meets_timing
            assert result.selected_method in ("M2", "M4")

    def test_energy_study_shows_savings_when_aged(self, pipeline):
        study = pipeline.energy_study(num_transitions=120, rng=0)
        by_level = {entry.delta_vth_mv: entry for entry in study}
        # Fresh silicon sees no compression and the baseline shares its
        # random stream (common random numbers), so the fresh ratio is
        # noise-free: exactly the leakage gap between the two periods.
        assert by_level[0.0].normalized_energy == pytest.approx(1.0, abs=0.1)
        assert by_level[50.0].normalized_energy < by_level[0.0].normalized_energy
