"""Tests of the quantization primitives and the M1..M5 method library."""

import numpy as np
import pytest

from repro.quantization.aciq import ACIQQuantizer, corrected_weight_params, laplace_clip_multiplier
from repro.quantization.asymmetric import AsymmetricMinMaxQuantizer
from repro.quantization.base import QuantParams, TensorStatistics
from repro.quantization.lapq import LAPQQuantizer, lp_exponent_for_bits
from repro.quantization.registry import METHOD_KEYS, available_methods, get_method
from repro.quantization.uniform import UniformSymmetricQuantizer


class TestQuantParams:
    def test_from_range_codes_are_bounded(self):
        params = QuantParams.from_range(-1.0, 3.0, 8)
        values = np.linspace(-2.0, 4.0, 101)
        codes = params.quantize(values)
        assert codes.min() >= 0 and codes.max() <= 255

    def test_zero_is_exactly_representable(self):
        params = QuantParams.from_range(-1.3, 2.7, 8)
        assert params.dequantize(params.quantize(np.array([0.0])))[0] == pytest.approx(0.0, abs=1e-9)

    def test_round_trip_error_bounded_by_half_step(self):
        params = QuantParams.from_range(0.0, 10.0, 8)
        values = np.linspace(0.0, 10.0, 257)
        error = np.abs(params.quantize_dequantize(values) - values)
        assert error.max() <= float(np.asarray(params.scale)) / 2 + 1e-12

    def test_symmetric_grid_centred(self):
        params = QuantParams.symmetric(2.0, 8)
        assert params.dequantize(params.quantize(np.array([0.0])))[0] == pytest.approx(0.0, abs=1e-9)
        assert params.quantize(np.array([100.0]))[0] == 255

    def test_more_bits_reduce_error(self):
        values = np.random.default_rng(0).normal(0, 1, 500)
        coarse = QuantParams.symmetric(3.0, 4).quantization_error(values)
        fine = QuantParams.symmetric(3.0, 8).quantization_error(values)
        assert fine < coarse

    def test_per_channel_broadcasting(self):
        weights = np.stack([np.full((3, 3), 0.1), np.full((3, 3), 10.0)])
        params = QuantParams.symmetric(np.array([0.1, 10.0]), 8, channel_axis=0)
        restored = params.dequantize(params.quantize(weights))
        assert np.allclose(restored, weights, atol=0.1)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            QuantParams(scale=np.array(0.0), zero_point=np.array(0.0), num_bits=8)
        with pytest.raises(ValueError):
            QuantParams(scale=np.array(1.0), zero_point=np.array(0.0), num_bits=0)

    def test_statistics(self):
        stats = TensorStatistics.from_array(np.array([1.0, -1.0, 3.0, -3.0]))
        assert stats.minimum == -3.0 and stats.maximum == 3.0
        assert stats.mean == pytest.approx(0.0)
        with pytest.raises(ValueError):
            TensorStatistics.from_array(np.array([]))


@pytest.fixture(scope="module")
def gaussian_weights():
    return np.random.default_rng(1).normal(0.0, 0.2, size=(8, 4, 3, 3))


@pytest.fixture(scope="module")
def relu_activations():
    samples = np.random.default_rng(2).normal(0.0, 1.0, size=(64, 32))
    return np.maximum(samples, 0.0)


class TestMethodLibrary:
    @pytest.mark.parametrize("key", METHOD_KEYS)
    def test_weight_round_trip_reasonable(self, key, gaussian_weights):
        method = get_method(key)
        params = method.weight_params(gaussian_weights, 8)
        restored = params.dequantize(params.quantize(gaussian_weights))
        relative_error = np.abs(restored - gaussian_weights).mean() / np.abs(gaussian_weights).mean()
        assert relative_error < 0.05

    @pytest.mark.parametrize("key", METHOD_KEYS)
    def test_activation_params_cover_post_relu_range(self, key, relu_activations):
        method = get_method(key)
        params = method.activation_params(relu_activations, 8)
        codes = params.quantize(relu_activations)
        assert codes.min() >= 0 and codes.max() <= 255
        restored = params.dequantize(codes)
        assert np.abs(restored - relu_activations).mean() < 0.1

    @pytest.mark.parametrize("key", METHOD_KEYS)
    def test_lower_bits_increase_error(self, key, gaussian_weights):
        method = get_method(key)
        error_8 = method.weight_params(gaussian_weights, 8).quantization_error(gaussian_weights)
        error_3 = method.weight_params(gaussian_weights, 3).quantization_error(gaussian_weights)
        assert error_3 > error_8

    def test_registry_keys_and_aliases(self):
        assert [method.key for method in available_methods()] == list(METHOD_KEYS)
        assert isinstance(get_method("aciq"), ACIQQuantizer)
        assert isinstance(get_method("lapq"), LAPQQuantizer)
        assert isinstance(get_method("minmax"), AsymmetricMinMaxQuantizer)
        assert isinstance(get_method("uniform"), UniformSymmetricQuantizer)
        with pytest.raises(KeyError):
            get_method("M9")

    def test_bias_correction_flags(self):
        assert get_method("M4").wants_bias_correction is True
        assert get_method("M5").wants_bias_correction is False
        assert get_method("M1").wants_bias_correction is False


class TestACIQ:
    def test_clipping_tightens_with_fewer_bits(self):
        assert laplace_clip_multiplier(2) < laplace_clip_multiplier(8)

    def test_heavy_tailed_tensor_gets_clipped(self):
        rng = np.random.default_rng(3)
        values = rng.laplace(0.0, 0.1, size=5000)
        values[:5] = 50.0  # extreme outliers
        params = ACIQQuantizer(bias_correction=False).weight_params(values.reshape(1, -1), 4)
        max_representable = float(np.max(np.abs(params.dequantize(np.array([0, 15])))))
        assert max_representable < 40.0

    def test_clipping_beats_minmax_on_outliers(self):
        rng = np.random.default_rng(4)
        values = rng.normal(0.0, 0.1, size=(4, 1000))
        values[:, 0] = 1.5
        aciq_error = ACIQQuantizer(bias_correction=False).weight_params(values, 3).quantization_error(values)
        minmax_error = AsymmetricMinMaxQuantizer().weight_params(values, 3).quantization_error(values)
        assert aciq_error < minmax_error

    def test_bias_correction_restores_channel_means(self, gaussian_weights):
        method = ACIQQuantizer(bias_correction=True)
        encode = method.weight_params(gaussian_weights, 3)
        corrected = corrected_weight_params(gaussian_weights, encode, channel_axis=0)
        codes = encode.quantize(gaussian_weights)
        plain_means = encode.dequantize(codes).reshape(8, -1).mean(axis=1)
        corrected_means = corrected.dequantize(codes).reshape(8, -1).mean(axis=1)
        true_means = gaussian_weights.reshape(8, -1).mean(axis=1)
        assert np.abs(corrected_means - true_means).mean() < np.abs(plain_means - true_means).mean() + 1e-12

    def test_invalid_prior(self):
        with pytest.raises(ValueError):
            ACIQQuantizer(prior="cauchy")


class TestLAPQ:
    def test_exponent_mapping(self):
        assert lp_exponent_for_bits(2) == pytest.approx(2.0)
        assert lp_exponent_for_bits(8) == pytest.approx(4.0)
        assert 2.0 <= lp_exponent_for_bits(5) <= 4.0

    def test_clip_never_exceeds_max_abs(self, gaussian_weights):
        params = LAPQQuantizer().weight_params(gaussian_weights, 4, per_channel=False)
        grid_max = float(np.max(np.abs(params.dequantize(np.array([0, params.max_level])))))
        assert grid_max <= np.abs(gaussian_weights).max() * 1.05

    def test_objective_improves_over_no_clipping(self):
        rng = np.random.default_rng(5)
        values = rng.normal(0.0, 0.05, size=4000)
        values[:30] = 1.5
        lapq_error = LAPQQuantizer().weight_params(values.reshape(1, -1), 4).quantization_error(values)
        naive_error = UniformSymmetricQuantizer().weight_params(values.reshape(1, -1), 4).quantization_error(values)
        assert lapq_error < naive_error

    def test_invalid_candidates(self):
        with pytest.raises(ValueError):
            LAPQQuantizer(num_candidates=1)
