"""Tests of the compression space, padding semantics and selection rule."""

import pytest

from repro.core.compression import (
    CompressionChoice,
    enumerate_compressions,
    euclidean_surrogate,
    select_minimal_compression,
)
from repro.core.padding import Padding, mac_case_analysis, multiplier_case_analysis, output_shift


class TestCompressionChoice:
    def test_bit_widths_follow_the_paper(self):
        choice = CompressionChoice(3, 4, Padding.LSB)
        assert choice.activation_bits() == 5
        assert choice.weight_bits() == 4
        assert choice.bias_bits() == 9

    def test_uncompressed_point(self):
        choice = CompressionChoice(0, 0)
        assert choice.is_uncompressed
        assert choice.activation_bits() == 8 and choice.weight_bits() == 8 and choice.bias_bits() == 16

    def test_surrogate(self):
        assert euclidean_surrogate(3, 4) == pytest.approx(5.0)
        assert CompressionChoice(3, 4).surrogate == pytest.approx(5.0)

    def test_label(self):
        assert CompressionChoice(2, 4, Padding.LSB).label() == "(2,4)/LSB"

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            CompressionChoice(-1, 0)
        with pytest.raises(ValueError):
            CompressionChoice(8, 0).activation_bits()


class TestEnumeration:
    def test_search_space_size(self):
        choices = enumerate_compressions(2, 2)
        # 1 uncompressed + 8 compressed points x 2 paddings
        assert len(choices) == 1 + 8 * 2

    def test_uncompressed_can_be_excluded(self):
        choices = enumerate_compressions(1, 1, include_uncompressed=False)
        assert all(not choice.is_uncompressed for choice in choices)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            enumerate_compressions(-1, 0)
        with pytest.raises(ValueError):
            enumerate_compressions(1, 1, paddings=())


class TestSelection:
    def test_minimal_surrogate_wins(self):
        feasible = [CompressionChoice(4, 4), CompressionChoice(1, 1), CompressionChoice(2, 3)]
        assert select_minimal_compression(feasible) == CompressionChoice(1, 1)

    def test_tie_breaks_towards_small_alpha(self):
        feasible = [CompressionChoice(4, 3), CompressionChoice(3, 4)]
        assert select_minimal_compression(feasible).alpha == 3

    def test_tie_breaks_towards_msb_padding(self):
        feasible = [CompressionChoice(2, 2, Padding.LSB), CompressionChoice(2, 2, Padding.MSB)]
        assert select_minimal_compression(feasible).padding is Padding.MSB

    def test_empty_feasible_set_rejected(self):
        with pytest.raises(ValueError):
            select_minimal_compression([])


class TestPadding:
    def test_msb_padding_zeros_top_bits(self):
        constants = multiplier_case_analysis(2, 1, Padding.MSB, width=8)
        assert constants == {"a[6]": 0, "a[7]": 0, "b[7]": 0}

    def test_lsb_padding_zeros_bottom_bits(self):
        constants = multiplier_case_analysis(2, 1, Padding.LSB, width=8)
        assert constants == {"a[0]": 0, "a[1]": 0, "b[0]": 0}

    def test_mac_case_analysis_includes_accumulator(self):
        constants = mac_case_analysis(1, 2, Padding.MSB)
        assert "c[21]" in constants and "c[19]" in constants
        assert len([k for k in constants if k.startswith("c[")]) == 3

    def test_zero_compression_has_no_constants(self):
        assert mac_case_analysis(0, 0, Padding.MSB) == {}

    def test_output_shift_only_for_lsb(self):
        assert output_shift(2, 3, Padding.LSB) == 5
        assert output_shift(2, 3, Padding.MSB) == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            multiplier_case_analysis(9, 0, Padding.MSB, width=8)
