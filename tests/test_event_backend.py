"""Tests of the batched event-driven (time-wheel) backend.

Four contracts are enforced:

* **bit-identity** — the batched wheel reproduces the scalar event engine
  lane by lane (values, per-bit timelines, captured outputs, arrivals,
  worst arrival) across aging-scenario families and random netlists;
* **observability** — both event engines fill
  :class:`~repro.circuits.simulator.EventCounters`, and the scalar counters
  summed over a batch's lanes equal the batched counters exactly
  (``wheel_buckets`` is union-based and only bounded);
* **capture-edge semantics** — an event landing exactly at
  ``time_ps == clock_period_ps`` IS captured, on both engines (the
  edge-inclusive behaviour is the spec, pinned here against regressions);
* **arrival-model ordering** — per functionally-changed output bit,
  ``transition <= settle`` and ``event <= settle``; the strict global chain
  ``transition <= event <= settle`` is *not* part of the contract, and a
  deterministic hazard circuit documents why it cannot be.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aging.cell_library import AgingAwareLibrarySet
from repro.aging.scenarios import (
    MissionProfile,
    PerCellTypeAging,
    UniformAging,
    VariationAging,
)
from repro.circuits.backends import (
    EVENT_BACKEND_MIN_LANES,
    EventWheelSimulator,
    LaneTimingSimulator,
    resolve_backend,
)
from repro.circuits.mac import build_mac, build_multiplier
from repro.circuits.netlist import Netlist
from repro.circuits.simulator import TimingSimulator
from repro.timing.error_model import characterize_timing_errors
from repro.timing.sta import StaticTimingAnalyzer

from tests.test_batch_simulator import random_netlists

_MAC = build_mac(multiplier_width=4, accumulator_width=10)
_LIBRARIES = AgingAwareLibrarySet.generate((0.0, 20.0, 50.0))


def _scenario_families(base):
    """One scenario per aging family (>= 3 families, per the PR contract)."""
    return [
        UniformAging(30.0, library=base),
        MissionProfile(years=5.0, temperature_c=85.0, duty_cycle=0.8, library=base),
        PerCellTypeAging(
            levels_mv={"NAND2": 40.0, "INV": 10.0}, default_mv=20.0, library=base
        ),
        VariationAging(25.0, 6.0, seed=11, library=base),
    ]


def _lane_inputs(netlist, rng, lanes):
    return {
        bus: [int(rng.integers(0, 1 << len(nets))) for _ in range(lanes)]
        for bus, nets in netlist.input_buses.items()
    }


def _lane_slice(batch, lane):
    return {bus: values[lane] for bus, values in batch.items()}


def _hazard_netlist():
    """``out = AND2(a, INV(a))``: a static-0 hazard that glitches on a rise.

    On ``a: 0 -> 1`` the AND gate sees the new ``a`` before the inverter's
    fall arrives, so ``out`` pulses ``0 -> 1 -> 0`` while its settled value
    never changes — the canonical glitch-only output bit.
    """
    netlist = Netlist("hazard")
    (a,) = netlist.add_input_bus("a", 1)
    inverted = netlist.add_gate("INV", [a])
    pulse = netlist.add_gate("AND2", [a, inverted])
    netlist.add_output_bus("out", [pulse])
    return netlist


# ------------------------------------------------------------- bit-identity
class TestWheelBitIdentity:
    @pytest.mark.parametrize("family", range(4))
    def test_matches_scalar_on_mac_across_scenario_families(self, family):
        scenario = _scenario_families(_LIBRARIES.fresh)[family]
        rng = np.random.default_rng(17 + family)
        lanes = 70  # one full word + a partial tail word
        previous = _lane_inputs(_MAC.netlist, rng, lanes)
        current = _lane_inputs(_MAC.netlist, rng, lanes)

        wheel = EventWheelSimulator(_MAC.netlist, scenario)
        evaluation = wheel.propagate_batch(previous, current)
        scalar = TimingSimulator(_MAC.netlist, scenario, arrival_model="event")

        finals = evaluation.final_outputs()
        previous_outs = evaluation.previous_outputs()
        clock = max(float(np.median(evaluation.worst_arrival_ps)), 1e-3)
        captured = evaluation.captured_outputs(clock)
        for lane in range(lanes):
            reference = scalar.propagate(
                _lane_slice(previous, lane), _lane_slice(current, lane)
            )
            assert _lane_slice(finals, lane) == reference.final_outputs
            assert _lane_slice(previous_outs, lane) == reference.previous_outputs
            assert _lane_slice(captured, lane) == reference.captured_outputs(clock)
            assert (
                float(evaluation.worst_arrival_ps[lane]) == reference.worst_arrival_ps
            )
            for bus, bus_timelines in reference.output_bit_timelines.items():
                for bit, changes in enumerate(bus_timelines):
                    assert (
                        evaluation.lane_bit_timeline(bus, bit, lane) == changes
                    )
                assert [
                    float(per_bit[lane])
                    for per_bit in evaluation.output_arrivals_ps[bus]
                ] == reference.output_arrivals_ps[bus]

    @given(
        netlist=random_netlists(),
        seed=st.integers(0, 2**32 - 1),
        lanes=st.integers(1, 90),
        level=st.sampled_from([0.0, 20.0, 50.0]),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_on_random_netlists(self, netlist, seed, lanes, level):
        rng = np.random.default_rng(seed)
        library = _LIBRARIES.library(level)
        previous = _lane_inputs(netlist, rng, lanes)
        current = _lane_inputs(netlist, rng, lanes)
        evaluation = EventWheelSimulator(netlist, library).propagate_batch(
            previous, current
        )
        scalar = TimingSimulator(netlist, library, arrival_model="event")
        finals = evaluation.final_outputs()
        clock = max(float(evaluation.worst_arrival_ps.max()) / 2, 1e-3)
        captured = evaluation.captured_outputs(clock)
        for lane in range(lanes):
            reference = scalar.propagate(
                _lane_slice(previous, lane), _lane_slice(current, lane)
            )
            assert _lane_slice(finals, lane) == reference.final_outputs
            assert _lane_slice(captured, lane) == reference.captured_outputs(clock)
            assert (
                float(evaluation.worst_arrival_ps[lane]) == reference.worst_arrival_ps
            )

    def test_lane_timed_evaluation_rebuilds_the_scalar_result(self):
        rng = np.random.default_rng(3)
        library = _LIBRARIES.library(50.0)
        previous = _lane_inputs(_MAC.netlist, rng, 9)
        current = _lane_inputs(_MAC.netlist, rng, 9)
        evaluation = EventWheelSimulator(_MAC.netlist, library).propagate_batch(
            previous, current
        )
        scalar = TimingSimulator(_MAC.netlist, library, arrival_model="event")
        for lane in (0, 4, 8):
            rebuilt = evaluation.lane_timed_evaluation(lane)
            reference = scalar.propagate(
                _lane_slice(previous, lane), _lane_slice(current, lane)
            )
            assert rebuilt == reference


# -------------------------------------------------------------- observability
class TestEventCounters:
    @given(
        netlist=random_netlists(),
        seed=st.integers(0, 2**32 - 1),
        lanes=st.integers(1, 90),
        level=st.sampled_from([0.0, 50.0]),
    )
    @settings(max_examples=30, deadline=None)
    def test_lane_summed_scalar_counters_equal_batched(self, netlist, seed, lanes, level):
        rng = np.random.default_rng(seed)
        library = _LIBRARIES.library(level)
        previous = _lane_inputs(netlist, rng, lanes)
        current = _lane_inputs(netlist, rng, lanes)
        wheel = EventWheelSimulator(netlist, library)
        evaluation = wheel.propagate_batch(previous, current)
        batched = evaluation.counters
        assert wheel.last_event_counters is batched

        scalar = TimingSimulator(netlist, library, arrival_model="event")
        popped = suppressed = 0
        buckets = []
        glitches: dict[str, int] = {}
        for lane in range(lanes):
            scalar.propagate(_lane_slice(previous, lane), _lane_slice(current, lane))
            lane_counters = scalar.last_event_counters
            popped += lane_counters.events_popped
            suppressed += lane_counters.events_suppressed
            buckets.append(lane_counters.wheel_buckets)
            for net, count in lane_counters.glitches_per_net.items():
                glitches[net] = glitches.get(net, 0) + count

        # Popped / suppressed / glitch counts are lane-summable and exact.
        assert batched.events_popped == popped
        assert batched.events_suppressed == suppressed
        assert batched.events_committed == popped - suppressed
        assert batched.glitches_per_net == glitches
        assert batched.total_glitches == sum(glitches.values())
        # Bucket counts are union-based: bounded by the per-lane extremes.
        assert max(buckets) <= batched.wheel_buckets <= sum(buckets)

    def test_scalar_counters_populated_per_propagation(self):
        library = _LIBRARIES.library(50.0)
        scalar = TimingSimulator(_MAC.netlist, library, arrival_model="event")
        assert scalar.last_event_counters is None
        scalar.propagate({"a": 0, "b": 0, "c": 0}, {"a": 15, "b": 15, "c": 1023})
        counters = scalar.last_event_counters
        assert counters.events_popped > 0
        assert 0 <= counters.events_suppressed <= counters.events_popped
        assert counters.wheel_buckets > 0
        assert all(count > 0 for count in counters.glitches_per_net.values())

    def test_glitchy_circuit_counts_the_pulse_commits(self):
        netlist = _hazard_netlist()
        library = _LIBRARIES.fresh
        scalar = TimingSimulator(netlist, library, arrival_model="event")
        evaluation = scalar.propagate({"a": 0}, {"a": 1})
        # The output pulses 0 -> 1 -> 0: two commits against zero functional
        # change, and ``glitches = commits - functional`` counts both.
        assert evaluation.final_outputs == {"out": 0}
        assert scalar.last_event_counters.total_glitches == 2

        wheel = EventWheelSimulator(netlist, library)
        batched = wheel.propagate_batch({"a": [0, 1, 0]}, {"a": [1, 1, 0]})
        # Only lane 0 transitions; the wheel sees the same single glitch.
        assert batched.counters.glitches_per_net == (
            scalar.last_event_counters.glitches_per_net
        )
        assert batched.commit_counts[netlist.gates[-1].output.name] == 2


# ------------------------------------------------------- capture-edge pinning
class TestCaptureEdgeSemantics:
    """An event exactly at ``time_ps == clock_period_ps`` IS captured.

    Edge-inclusive capture is the specification (the scalar replay breaks
    on ``time_ps > clock_period_ps``); this pins it on both event engines
    so neither can drift to edge-exclusive independently.
    """

    def test_edge_inclusive_capture_on_both_engines(self):
        netlist = _hazard_netlist()
        library = _LIBRARIES.library(20.0)
        scalar = TimingSimulator(netlist, library, arrival_model="event")
        evaluation = scalar.propagate({"a": 0}, {"a": 1})
        (rise, fall) = evaluation.output_bit_timelines["out"][0]
        rise_time, rise_value = rise
        fall_time, fall_value = fall
        assert rise_value == 1 and fall_value == 0 and 0 < rise_time < fall_time

        wheel = EventWheelSimulator(netlist, library)
        batched = wheel.propagate_batch({"a": [0]}, {"a": [1]})
        assert batched.lane_bit_timeline("out", 0, 0) == [rise, fall]

        for clock, expected in [
            (np.nextafter(rise_time, 0.0), 0),  # just before the pulse
            (rise_time, 1),  # event exactly at the edge: captured
            (np.nextafter(rise_time, np.inf), 1),
            (np.nextafter(fall_time, 0.0), 1),
            (fall_time, 0),  # the settling event, again edge-inclusive
        ]:
            assert scalar.propagate({"a": 0}, {"a": 1}).captured_outputs(clock) == {
                "out": expected
            }
            assert wheel.propagate_batch({"a": [0]}, {"a": [1]}).captured_outputs(
                clock
            ) == {"out": [expected]}

    def test_edge_inclusive_capture_on_a_mac_output(self):
        library = _LIBRARIES.library(50.0)
        scalar = TimingSimulator(_MAC.netlist, library, arrival_model="event")
        previous = {"a": 3, "b": 5, "c": 100}
        current = {"a": 12, "b": 11, "c": 900}
        evaluation = scalar.propagate(previous, current)
        arrival = evaluation.worst_arrival_ps
        assert arrival > 0
        # At exactly the worst arrival the result is fully settled...
        assert scalar.propagate(previous, current).captured_outputs(arrival) == (
            evaluation.final_outputs
        )
        # ... and one ULP earlier the latest bit is still stale.
        just_before = np.nextafter(arrival, 0.0)
        assert scalar.propagate(previous, current).captured_outputs(just_before) != (
            evaluation.final_outputs
        )
        wheel = EventWheelSimulator(_MAC.netlist, library)
        batch_prev = {bus: [value] for bus, value in previous.items()}
        batch_curr = {bus: [value] for bus, value in current.items()}
        batched = wheel.propagate_batch(batch_prev, batch_curr)
        assert float(batched.worst_arrival_ps[0]) == arrival
        assert batched.captured_outputs(arrival) == {
            bus: [value] for bus, value in evaluation.final_outputs.items()
        }
        assert batched.captured_outputs(just_before) != {
            bus: [value] for bus, value in evaluation.final_outputs.items()
        }


# ------------------------------------------------------ arrival-model ordering
class TestArrivalModelOrdering:
    """The provable ordering contract between the three arrival models.

    For every output bit whose settled value actually changes,
    ``transition`` (optimistic) and ``event`` (exact) arrivals are both
    bounded by the ``settle`` (pessimistic) arrival.  No ordering between
    ``transition`` and ``event`` is asserted — glitch masking lets either
    one finish first — and glitch-only bits are excluded because the
    levelized models define their arrival as 0.0.
    """

    @given(
        netlist=random_netlists(),
        seed=st.integers(0, 2**32 - 1),
        lanes=st.integers(1, 60),
        level=st.sampled_from([0.0, 20.0, 50.0]),
    )
    @settings(max_examples=30, deadline=None)
    def test_changed_bits_are_bounded_by_settle(self, netlist, seed, lanes, level):
        rng = np.random.default_rng(seed)
        library = _LIBRARIES.library(level)
        previous = _lane_inputs(netlist, rng, lanes)
        current = _lane_inputs(netlist, rng, lanes)
        event = EventWheelSimulator(netlist, library).propagate_batch(
            previous, current
        )
        settle = LaneTimingSimulator(netlist, library, "settle").propagate_batch(
            previous, current
        )
        transition = LaneTimingSimulator(
            netlist, library, "transition"
        ).propagate_batch(previous, current)
        from repro.utils.bitops import lane_array_to_bits

        for bus, rows in event.final_output_words.items():
            changed = lane_array_to_bits(
                rows ^ event.previous_output_words[bus], lanes
            )
            settle_times = settle.output_arrivals_ps[bus]
            assert np.all(
                transition.output_arrivals_ps[bus][changed]
                <= settle_times[changed]
            )
            assert np.all(
                event.output_arrivals_ps[bus][changed] <= settle_times[changed]
            )

    def test_strict_global_ordering_is_not_satisfiable(self):
        # The ISSUE-style strict chain "transition <= event <= settle over
        # every bit" cannot hold: a glitch-only bit commits events at
        # positive times while both levelized models report arrival 0.0 for
        # bits whose settled value never changes.  The hazard circuit is a
        # deterministic witness, which is why the contract above is stated
        # only for functionally-changed bits.
        netlist = _hazard_netlist()
        library = _LIBRARIES.fresh
        event = EventWheelSimulator(netlist, library).propagate_batch(
            {"a": [0]}, {"a": [1]}
        )
        settle = LaneTimingSimulator(netlist, library, "settle").propagate_batch(
            {"a": [0]}, {"a": [1]}
        )
        event_arrival = float(event.output_arrivals_ps["out"][0, 0])
        settle_arrival = float(settle.output_arrivals_ps["out"][0, 0])
        assert settle_arrival == 0.0  # unchanged bit: levelized arrival is 0
        assert event_arrival > 0.0  # but the glitch settles at positive time
        assert not event_arrival <= settle_arrival


# ----------------------------------------------------------------- validation
class TestValidation:
    def test_levelized_models_rejected(self):
        for model in ("settle", "transition"):
            with pytest.raises(ValueError, match="arrival_model must be 'event'"):
                EventWheelSimulator(_MAC.netlist, _LIBRARIES.fresh, model)

    def test_registry_rejects_event_backend_for_levelized_models(self):
        with pytest.raises(ValueError, match="batched engine"):
            resolve_backend("event", "settle", 64)

    def test_lane_count_mismatch_rejected(self):
        wheel = EventWheelSimulator(_MAC.netlist, _LIBRARIES.fresh)
        with pytest.raises(ValueError, match="lanes"):
            wheel.propagate_batch(
                {"a": [1, 2], "b": [3, 4], "c": [0, 0]},
                {"a": [1], "b": [3], "c": [0]},
            )


# ---------------------------------------------------- error-model integration
class TestErrorModelIntegration:
    def test_event_backend_matches_scalar_statistics(self):
        unit = build_multiplier(4, "array")
        library = _LIBRARIES.library(50.0)
        period = StaticTimingAnalyzer(unit, _LIBRARIES.fresh).critical_path_delay()
        kwargs = dict(
            num_samples=120, rng=5, arrival_model="event", batch_size=32, msb_count=2
        )
        scalar = characterize_timing_errors(
            unit, library, period, backend="scalar", **kwargs
        )
        wheel = characterize_timing_errors(
            unit, library, period, backend="event", **kwargs
        )
        assert wheel == scalar
        assert scalar.error_rate > 0.0

    def test_auto_routes_wide_event_batches_to_the_wheel(self):
        unit = build_multiplier(4, "array")
        library = _LIBRARIES.library(50.0)
        period = StaticTimingAnalyzer(unit, _LIBRARIES.fresh).critical_path_delay()
        kwargs = dict(num_samples=150, rng=9, arrival_model="event", msb_count=2)
        narrow = characterize_timing_errors(
            unit, library, period, backend="auto",
            batch_size=EVENT_BACKEND_MIN_LANES - 1, **kwargs
        )
        wide = characterize_timing_errors(
            unit, library, period, backend="auto",
            batch_size=EVENT_BACKEND_MIN_LANES, **kwargs
        )
        assert narrow == wide  # same statistics whichever engine auto picks
