"""Tests of the process-parallel sweep subsystem (repro.parallel).

The central property under test is the seed-sharding contract: every sweep
front-end must produce **bit-identical** results for any ``workers`` /
``chunk_size`` combination, because work items (and their spawned child RNG
streams) are fixed before dispatch and merged in item order.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.aging.cell_library import AgingAwareLibrarySet
from repro.circuits.mac import build_mac, build_multiplier
from repro.circuits.simulator import LogicSimulator
from repro.nn.evaluate import sweep_fault_injection, sweep_quantization_grid
from repro.parallel import (
    ParallelExecutor,
    resolve_workers,
    shard_sizes,
    spawn_generators,
    spawn_seed_sequences,
    usable_cpu_count,
)
from repro.quantization.registry import get_method
from repro.timing.error_model import sweep_timing_errors
from repro.timing.sta import StaticTimingAnalyzer
from repro.core.padding import Padding, mac_case_analysis


# Module-level task functions: executor tasks must be picklable.
def _square(item, payload):
    return item * item


def _add_payload(item, payload):
    return item + payload["offset"]


def _fail_on_three(item, payload):
    if item == 3:
        raise ValueError("item three is broken")
    return item


# ---------------------------------------------------------------- executor
class TestParallelExecutor:
    @pytest.mark.parametrize("workers", [0, 1, 2])
    @pytest.mark.parametrize("chunk_size", [None, 1, 3])
    def test_map_preserves_item_order(self, workers, chunk_size):
        executor = ParallelExecutor(workers=workers, chunk_size=chunk_size)
        assert executor.map(_square, range(7)) == [i * i for i in range(7)]

    def test_payload_is_shared(self):
        executor = ParallelExecutor(workers=2, chunk_size=2)
        assert executor.map(_add_payload, [1, 2, 3], payload={"offset": 10}) == [11, 12, 13]

    def test_empty_items(self):
        assert ParallelExecutor(workers=2).map(_square, []) == []

    @pytest.mark.parametrize("workers", [0, 2])
    def test_task_errors_propagate(self, workers):
        executor = ParallelExecutor(workers=workers)
        with pytest.raises(ValueError, match="item three"):
            executor.map(_fail_on_three, [1, 2, 3, 4])

    def test_unpicklable_task_falls_back_to_serial_under_spawn(self):
        captured = []

        def closure_task(item, payload):  # not picklable
            captured.append(item)
            return item

        # Spawn must pickle the initargs, so the closure forces the serial
        # fallback (the pre-check fires before any process is started).
        executor = ParallelExecutor(workers=2, start_method="spawn")
        with pytest.warns(RuntimeWarning, match="not picklable"):
            result = executor.map(closure_task, [1, 2])
        assert result == [1, 2]
        assert captured == [1, 2]  # ran in this process

    @pytest.mark.skipif(
        "fork" not in __import__("multiprocessing").get_all_start_methods(),
        reason="fork start method unavailable",
    )
    def test_unpicklable_task_still_parallelises_under_fork(self):
        def closure_task(item, payload):  # not picklable, but fork-inheritable
            return item * item

        executor = ParallelExecutor(workers=2, start_method="fork")
        assert executor.map(closure_task, [1, 2, 3]) == [1, 4, 9]

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(chunk_size=0)

    def test_resolve_workers(self):
        assert resolve_workers(None) == 0
        assert resolve_workers(0) == 0
        assert resolve_workers(3) == 3
        assert resolve_workers(-1) == usable_cpu_count()
        assert resolve_workers(-1) >= 1


# ----------------------------------------------------------------- seeding
class TestSeeding:
    def test_spawn_is_deterministic(self):
        first = [g.integers(0, 2**32, size=4).tolist() for g in spawn_generators(7, 5)]
        second = [g.integers(0, 2**32, size=4).tolist() for g in spawn_generators(7, 5)]
        assert first == second

    def test_children_are_independent(self):
        draws = [g.integers(0, 2**32, size=4).tolist() for g in spawn_generators(7, 5)]
        assert len({tuple(d) for d in draws}) == 5

    def test_generator_root_is_consumed_once(self):
        parent = np.random.default_rng(0)
        children = spawn_seed_sequences(parent, 3)
        assert len(children) == 3

    def test_shard_sizes(self):
        assert shard_sizes(10, 4) == [4, 4, 2]
        assert shard_sizes(8, 4) == [4, 4]
        assert shard_sizes(3, 10) == [3]
        assert shard_sizes(0, 10) == []
        with pytest.raises(ValueError):
            shard_sizes(10, 0)
        with pytest.raises(ValueError):
            shard_sizes(-1, 4)

    def test_seed_sequences_are_picklable(self):
        children = spawn_seed_sequences(0, 2)
        clones = pickle.loads(pickle.dumps(children))
        assert [np.random.default_rng(c).integers(0, 100) for c in clones] == [
            np.random.default_rng(c).integers(0, 100) for c in children
        ]


# ---------------------------------------------------------- netlist pickle
class TestPicklableTaskSpecs:
    def test_netlist_round_trip_preserves_structure_and_timing(self, library_set):
        mac = build_mac()
        clone = pickle.loads(pickle.dumps(mac))
        assert clone.netlist.stats() == mac.netlist.stats()
        inputs = {"a": 37, "b": 201, "c": 5000}
        assert (
            LogicSimulator(clone.netlist).evaluate(inputs)
            == LogicSimulator(mac.netlist).evaluate(inputs)
        )
        aged = library_set.library(50.0)
        assert (
            StaticTimingAnalyzer(clone, aged).critical_path_delay()
            == StaticTimingAnalyzer(mac, aged).critical_path_delay()
        )

    def test_round_trip_preserves_fanout_order(self):
        multiplier = build_multiplier(4, "array")
        clone = pickle.loads(pickle.dumps(multiplier))
        for original, copy in zip(multiplier.netlist.gates, clone.netlist.gates):
            assert original.cell_name == copy.cell_name
            assert original.output.fanout == copy.output.fanout


# ------------------------------------------------------- timing-error sweep
@pytest.fixture(scope="module")
def sweep_unit():
    return build_multiplier(5, "array")


def _run_sweep(unit, libraries, **overrides):
    kwargs = dict(
        levels_mv=(0.0, 30.0, 50.0),
        num_samples=60,
        rng=0,
        effective_output_width=10,
        arrival_model="settle",
        samples_per_shard=16,
    )
    kwargs.update(overrides)
    return sweep_timing_errors(unit, libraries, **kwargs)


class TestTimingSweepDeterminism:
    @pytest.mark.parametrize("workers,chunk_size", [(1, None), (2, 1), (4, 2)])
    def test_parallel_matches_serial_bit_for_bit(self, sweep_unit, library_set, workers, chunk_size):
        serial = _run_sweep(sweep_unit, library_set)
        parallel = _run_sweep(sweep_unit, library_set, workers=workers, chunk_size=chunk_size)
        assert parallel == serial

    def test_event_model_parallel_matches_serial(self, sweep_unit, library_set):
        serial = _run_sweep(sweep_unit, library_set, arrival_model="event", num_samples=24)
        parallel = _run_sweep(
            sweep_unit, library_set, arrival_model="event", num_samples=24, workers=2
        )
        assert parallel == serial

    def test_results_sorted_by_level_regardless_of_input_order(self, sweep_unit, library_set):
        shuffled = _run_sweep(sweep_unit, library_set, levels_mv=(50.0, 0.0, 30.0))
        ordered = _run_sweep(sweep_unit, library_set, levels_mv=(0.0, 30.0, 50.0))
        assert shuffled == ordered
        assert [stat.delta_vth_mv for stat in shuffled] == [0.0, 30.0, 50.0]

    def test_levels_share_the_input_transition_chain(self, sweep_unit, library_set):
        """Common random numbers: the fresh level errors nowhere, and every
        level draws the same vectors, so per-level statistics at one shard
        plan never depend on which other levels are swept."""
        alone = _run_sweep(sweep_unit, library_set, levels_mv=(50.0,))
        together = _run_sweep(sweep_unit, library_set, levels_mv=(0.0, 30.0, 50.0))
        assert together[-1] == alone[0]

    def test_shard_plan_changes_streams_but_not_contract(self, sweep_unit, library_set):
        """samples_per_shard is part of the statistical contract (it fixes
        the shard decomposition), unlike workers/chunk_size which are pure
        dispatch knobs."""
        serial = _run_sweep(sweep_unit, library_set, samples_per_shard=64)
        parallel = _run_sweep(sweep_unit, library_set, samples_per_shard=64, workers=3)
        assert parallel == serial

    def test_custom_closure_sampler_keeps_results_identical(self, sweep_unit, library_set):
        """A closure sampler parallelises under fork (inherited) and falls
        back to serial under spawn — bit-identical statistics either way."""
        widths = dict(sweep_unit.input_widths)

        def sampler(rng):  # closure: cannot be pickled
            return {name: int(rng.integers(0, 1 << width)) for name, width in widths.items()}

        serial = _run_sweep(sweep_unit, library_set, input_sampler=sampler)
        fallback = _run_sweep(sweep_unit, library_set, input_sampler=sampler, workers=2)
        assert fallback == serial
        assert serial[-1].error_rate > 0.0

    def test_invalid_samples_per_shard_rejected(self, sweep_unit, library_set):
        with pytest.raises(ValueError):
            _run_sweep(sweep_unit, library_set, samples_per_shard=0)


# ---------------------------------------------------- fault-injection sweep
class TestFaultSweepDeterminism:
    def test_parallel_matches_serial_bit_for_bit(self, tiny_model, tiny_dataset, tiny_calibration):
        x_test = tiny_dataset.x_test[:40]
        y_test = tiny_dataset.y_test[:40]
        kwargs = dict(
            flip_probabilities=(0.0, 1e-3, 1e-2),
            repetitions=2,
            seed=3,
        )
        serial = sweep_fault_injection(
            tiny_model, get_method("M2"), tiny_calibration, x_test, y_test, **kwargs
        )
        parallel = sweep_fault_injection(
            tiny_model, get_method("M2"), tiny_calibration, x_test, y_test,
            workers=2, chunk_size=1, **kwargs
        )
        assert parallel == serial
        assert set(serial) == {0.0, 1e-3, 1e-2}


# ------------------------------------------------------- quantization grid
class TestQuantizationGridDeterminism:
    def test_parallel_matches_serial(self, tiny_model, tiny_dataset, tiny_calibration):
        x_test = tiny_dataset.x_test[:40]
        y_test = tiny_dataset.y_test[:40]
        tiles = [
            (method_key, 8 - alpha, 8 - beta, 16 - alpha - beta)
            for method_key in ("M2", "M4")
            for alpha, beta in ((0, 0), (2, 2), (4, 4))
        ]
        serial = sweep_quantization_grid(
            tiny_model, tiles, tiny_calibration, x_test, y_test
        )
        parallel = sweep_quantization_grid(
            tiny_model, tiles, tiny_calibration, x_test, y_test, workers=2, chunk_size=2
        )
        assert parallel == serial
        assert [e.method_key for e in serial] == [t[0] for t in tiles]
        assert all(e.fp32_accuracy == serial[0].fp32_accuracy for e in serial)


# --------------------------------------------------- multi-corner STA pass
class TestBatchedCaseAnalysis:
    def test_batch_matches_per_corner_delays(self, paper_mac, library_set):
        analyzer = StaticTimingAnalyzer(paper_mac, library_set.library(40.0))
        cases = [None, {}]
        cases += [
            mac_case_analysis(alpha, beta, padding)
            for alpha in (0, 2, 5)
            for beta in (1, 3)
            for padding in (Padding.MSB, Padding.LSB)
        ]
        batched = analyzer.case_analysis_delays(cases)
        individual = [analyzer.critical_path_delay(case) for case in cases]
        assert batched == individual

    def test_single_levelized_pass_per_batch(self, paper_mac, library_set):
        analyzer = StaticTimingAnalyzer(paper_mac, library_set.fresh)
        cases = [mac_case_analysis(alpha, alpha, Padding.LSB) for alpha in range(5)]
        before = analyzer.levelized_passes
        analyzer.case_analysis_delays(cases)
        assert analyzer.levelized_passes == before + 1

    def test_empty_batch(self, paper_mac, library_set):
        analyzer = StaticTimingAnalyzer(paper_mac, library_set.fresh)
        assert analyzer.case_analysis_delays([]) == []
