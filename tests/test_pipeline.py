"""Tests of the dependency-aware experiment pipeline (repro.pipeline).

Covers the graph layer (topology, closure, validation), the input-addressed
cache keys (stability + subtree invalidation), the artifact cache
round-trips, and the scheduler contracts: bit-identical results for any
worker count, warm-cache reruns that execute zero experiment bodies, and the
``fig4b -> table1`` dependency edge that replaced the old runner's
hard-coded special case.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.experiments.reporting import ExperimentResult, _jsonify
from repro.experiments.settings import ExperimentSettings
from repro.experiments.workspace import ExperimentWorkspace
from repro.experiments.fig1a_multiplier_errors import run_fig1a
from repro.experiments.fig2_mac_delay import run_fig2
from repro.experiments.fig4_delay_accuracy import run_fig4a, run_fig4b
from repro.experiments.fig5_energy import run_fig5
from repro.experiments.table1_accuracy import run_table1
from repro.experiments.table2_compression import run_table2
from repro.parallel import ParallelExecutor
from repro.pipeline import (
    ArtifactCache,
    EXPERIMENT_NAMES,
    Task,
    TaskGraph,
    build_experiment_graph,
    compute_cache_keys,
    run_pipeline,
)
from repro.pipeline.task import PICKLE_FORMAT, PRODUCT


def canonical(result: ExperimentResult) -> str:
    """JSON-canonical form: what save_json writes, invariant to the cache.

    A cache round-trip JSON-normalises containers (tuples become lists,
    float dict keys become strings); the serialised text is identical.
    """
    return json.dumps(result.to_dict(), indent=2, default=_jsonify)


@pytest.fixture(scope="module")
def hw_settings() -> ExperimentSettings:
    """Hardware-side experiments only: no dataset, no model training."""
    return ExperimentSettings.fast(
        error_samples=60,
        energy_transitions=50,
        max_alpha=4,
        max_beta=4,
        test_subset=40,
        fig2_max_compression=3,
    )


@pytest.fixture(scope="module")
def nn_settings(tmp_path_factory) -> ExperimentSettings:
    """Tiny but complete NN-side settings (one network, one aged level)."""
    return ExperimentSettings.fast(
        train_per_class=8,
        test_per_class=4,
        training_epochs=1,
        training_batch_size=8,
        test_subset=8,
        calibration_samples=8,
        table1_networks=("squeezenet",),
        fig1b_networks=("resnet20",),
        ablation_networks=("squeezenet",),
        aging_levels_mv=(0.0, 50.0),
        max_alpha=3,
        max_beta=3,
        cache_dir=tmp_path_factory.mktemp("nn-zoo-cache"),
    )


class TestTaskGraph:
    def test_registry_covers_every_experiment(self, hw_settings):
        graph = build_experiment_graph(hw_settings)
        assert {task.name for task in graph.experiments()} == set(EXPERIMENT_NAMES)
        graph.validate()

    def test_fig4b_depends_on_table1(self, hw_settings):
        graph = build_experiment_graph(hw_settings)
        assert "table1" in graph["fig4b"].depends
        closure = graph.closure(["fig4b"])
        assert "table1" in closure and "dataset" in closure

    def test_model_tasks_follow_settings(self, hw_settings):
        settings = hw_settings.with_overrides(
            table1_networks=("vgg16",), fig1b_networks=("resnet20",), ablation_networks=("vgg16",)
        )
        graph = build_experiment_graph(settings)
        models = [name for name in graph.names if name.startswith("model:")]
        assert models == ["model:resnet20", "model:vgg16"]
        assert graph["fig1b"].depends == ("dataset", "model:resnet20")

    def test_topological_order_is_dependency_closed_and_stable(self, hw_settings):
        graph = build_experiment_graph(hw_settings)
        order = [task.name for task in graph.topological_order()]
        position = {name: index for index, name in enumerate(order)}
        for task in graph:
            for dep in task.depends:
                assert position[dep] < position[task.name]
        assert order == [task.name for task in graph.topological_order()]

    def test_cycle_detection(self):
        graph = TaskGraph(
            [
                Task("a", lambda ctx: None, depends=("b",)),
                Task("b", lambda ctx: None, depends=("a",)),
            ]
        )
        with pytest.raises(ValueError, match="cycle"):
            graph.topological_order()

    def test_unknown_dependency_rejected(self):
        graph = TaskGraph([Task("a", lambda ctx: None, depends=("ghost",))])
        with pytest.raises(KeyError, match="ghost"):
            graph.validate()

    def test_light_task_may_not_depend_on_heavy(self):
        graph = TaskGraph(
            [
                Task("heavy", lambda ctx: None, heavy=True),
                Task("light", lambda ctx: None, depends=("heavy",), heavy=False),
            ]
        )
        with pytest.raises(ValueError, match="light"):
            graph.validate()

    def test_duplicate_task_rejected(self):
        graph = TaskGraph([Task("a", lambda ctx: None)])
        with pytest.raises(ValueError, match="duplicate"):
            graph.add(Task("a", lambda ctx: None))


class TestCacheKeys:
    def test_keys_are_stable_across_processes_worth_of_rebuilds(self, hw_settings):
        first = compute_cache_keys(build_experiment_graph(hw_settings), hw_settings)
        second = compute_cache_keys(build_experiment_graph(hw_settings), hw_settings)
        assert first == second

    def test_unrelated_field_change_keeps_keys_warm(self, hw_settings):
        keys = compute_cache_keys(build_experiment_graph(hw_settings), hw_settings)
        changed = hw_settings.with_overrides(energy_transitions=999)
        keys2 = compute_cache_keys(build_experiment_graph(changed), changed)
        assert keys2["fig5"] != keys["fig5"]
        for untouched in ("fig1a", "fig2", "table2", "table1", "fig4b", "dataset"):
            assert keys2[untouched] == keys[untouched]

    def test_throughput_knobs_never_change_keys(self, hw_settings):
        keys = compute_cache_keys(build_experiment_graph(hw_settings), hw_settings)
        changed = hw_settings.with_overrides(workers=4, chunk_size=7, sim_backend="ndarray")
        assert compute_cache_keys(build_experiment_graph(changed), changed) == keys

    def test_batch_size_is_statistical_config_for_fig1a(self, hw_settings):
        """sim_batch_size moves the samples-per-shard floor and hence the
        drawn Monte-Carlo streams: it must invalidate fig1a (and only it)."""
        keys = compute_cache_keys(build_experiment_graph(hw_settings), hw_settings)
        changed = hw_settings.with_overrides(sim_batch_size=8192)
        keys2 = compute_cache_keys(build_experiment_graph(changed), changed)
        assert keys2["fig1a"] != keys["fig1a"]
        assert all(keys2[n] == keys[n] for n in keys if n != "fig1a")

    @staticmethod
    def _scenario_family(keys: "dict[str, str]") -> set[str]:
        return {
            name
            for name in keys
            if name == "scenario_sweep" or name.startswith("scenario_point:")
        }

    def test_scenario_fields_key_the_scenario_readers_only(self, hw_settings):
        """The aging-scenario axis is statistical configuration of its
        readers: switching the family (or any of its knobs) must invalidate
        fig1a and the scenario_sweep point family (whose task *names* follow
        the axis) while every level-based experiment stays warm."""
        keys = compute_cache_keys(build_experiment_graph(hw_settings), hw_settings)
        changed = hw_settings.with_overrides(scenario="mission")
        keys2 = compute_cache_keys(build_experiment_graph(changed), changed)
        assert keys2["fig1a"] != keys["fig1a"]
        assert self._scenario_family(keys2) != self._scenario_family(keys)
        stable = set(keys) - {"fig1a"} - self._scenario_family(keys)
        assert stable == set(keys2) - {"fig1a"} - self._scenario_family(keys2)
        assert all(keys2[n] == keys[n] for n in stable)
        tweaked = changed.with_overrides(mission_years=(0.0, 2.0))
        keys3 = compute_cache_keys(build_experiment_graph(tweaked), tweaked)
        assert keys3["fig1a"] != keys2["fig1a"]

    def test_seed_change_invalidates_exactly_the_reading_subtree(self, hw_settings):
        keys = compute_cache_keys(build_experiment_graph(hw_settings), hw_settings)
        reseeded = hw_settings.with_overrides(seed=99)
        keys2 = compute_cache_keys(build_experiment_graph(reseeded), reseeded)
        # Everything that (transitively) draws randomness moves...
        for seeded in ("dataset", "model:squeezenet", "table1", "fig4b", "fig1a", "fig5"):
            assert keys2[seeded] != keys[seeded]
        # ...while the purely structural STA tasks stay put.
        for unseeded in ("mac", "library_set", "pipeline", "fig2", "table2", "fig4a"):
            assert keys2[unseeded] == keys[unseeded]

    def test_upstream_invalidation_propagates_through_edges(self, hw_settings):
        keys = compute_cache_keys(build_experiment_graph(hw_settings), hw_settings)
        changed = hw_settings.with_overrides(training_epochs=99)
        keys2 = compute_cache_keys(build_experiment_graph(changed), changed)
        assert keys2["model:squeezenet"] != keys["model:squeezenet"]
        assert keys2["table1"] != keys["table1"]  # via model edge
        assert keys2["fig4b"] != keys["fig4b"]  # via table1 edge
        assert keys2["dataset"] == keys["dataset"]


class TestArtifactCache:
    def test_result_round_trip_preserves_json_form(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        task = Task("demo", lambda ctx: None)
        result = ExperimentResult(
            "demo", "Demo", ["x"], [[1.5]], metadata={"levels": (1.0, 2.0), 3.0: "k"}
        )
        assert not cache.contains(task, "k" * 8)
        cache.store(task, "k" * 8, result)
        assert cache.contains(task, "k" * 8)
        loaded = cache.load(task, "k" * 8)
        assert canonical(loaded) == canonical(result)
        meta = json.loads(cache.meta_path(task, "k" * 8).read_text())
        assert meta["task"] == "demo" and meta["format"] == "json"

    def test_pickle_round_trip_for_products(self, tmp_path):
        import numpy as np

        cache = ArtifactCache(tmp_path)
        task = Task("library_set", lambda ctx: None, kind=PRODUCT, serializer=PICKLE_FORMAT)
        value = {"array": np.arange(5), "tag": "libs"}
        cache.store(task, "abc", value)
        loaded = cache.load(task, "abc")
        assert loaded["tag"] == "libs"
        assert np.array_equal(loaded["array"], value["array"])

    def test_uncacheable_tasks_are_never_stored(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        task = Task("mac", lambda ctx: None, kind=PRODUCT, cacheable=False, serializer=PICKLE_FORMAT)
        assert cache.store(task, "abc", object()) is None
        assert not cache.contains(task, "abc")

    def test_model_task_directories_are_filesystem_safe(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        task = Task("model:vgg16", lambda ctx: None, kind=PRODUCT, serializer=PICKLE_FORMAT)
        path = cache.store(task, "abc", [1, 2])
        assert path.parent.name == "model_vgg16"


class TestSchedulerHardware:
    """Scheduler contracts on the circuit-side experiments (fast)."""

    NAMES = ("fig1a", "fig2", "table2", "fig4a", "fig5")

    @pytest.fixture(scope="class")
    def sequential_reference(self, hw_settings):
        """The PR 3 sequential runner semantics: one shared workspace."""
        workspace = ExperimentWorkspace.create(hw_settings)
        runners = {
            "fig1a": run_fig1a,
            "fig2": run_fig2,
            "table2": run_table2,
            "fig4a": run_fig4a,
            "fig5": run_fig5,
        }
        return {name: canonical(runners[name](workspace=workspace)) for name in self.NAMES}

    @pytest.mark.parametrize("workers", [0, 2, 4])
    def test_bit_identical_to_sequential_runner(self, hw_settings, sequential_reference, workers):
        run = run_pipeline(
            list(self.NAMES), hw_settings.with_overrides(workers=workers), cache=False
        )
        for name in self.NAMES:
            assert canonical(run.results[name]) == sequential_reference[name], name

    def test_subsets_are_bit_identical_too(self, hw_settings, sequential_reference):
        run = run_pipeline(["fig5", "fig1a"], hw_settings, cache=False)
        assert run.requested == ("fig5", "fig1a")
        assert canonical(run.results_list()[0]) == sequential_reference["fig5"]
        assert canonical(run.results_list()[1]) == sequential_reference["fig1a"]

    def test_warm_cache_rerun_executes_zero_experiment_bodies(self, hw_settings, tmp_path):
        cold = run_pipeline(["fig1a", "fig2", "table2"], hw_settings, cache_dir=tmp_path)
        assert cold.executed_experiments == ("fig1a", "fig2", "table2")
        assert all(cold.records[name].stored for name in cold.executed_experiments)
        warm = run_pipeline(["fig1a", "fig2", "table2"], hw_settings, cache_dir=tmp_path)
        assert warm.executed == ()  # not even the netlist builders run
        assert warm.cache_hits == ("fig1a", "fig2", "table2")
        for name in ("fig1a", "fig2", "table2"):
            assert canonical(warm.results[name]) == canonical(cold.results[name])

    def test_settings_change_invalidates_only_the_affected_subtree(self, hw_settings, tmp_path):
        run_pipeline(["fig1a", "fig5"], hw_settings, cache_dir=tmp_path)
        changed = hw_settings.with_overrides(energy_transitions=60)
        second = run_pipeline(["fig1a", "fig5"], changed, cache_dir=tmp_path)
        assert second.executed_experiments == ("fig5",)
        assert "fig1a" in second.cache_hits

    def test_disabled_cache_stores_nothing(self, hw_settings, tmp_path):
        run = run_pipeline(["fig2"], hw_settings, cache=False, cache_dir=tmp_path)
        assert run.executed_experiments == ("fig2",)
        assert not any(tmp_path.iterdir())

    def test_workers_do_not_touch_the_cold_cache_semantics(self, hw_settings, tmp_path):
        cold = run_pipeline(
            ["fig1a", "fig2", "table2"],
            hw_settings.with_overrides(workers=2),
            cache_dir=tmp_path,
        )
        assert cold.executed_experiments == ("fig1a", "fig2", "table2")
        warm = run_pipeline(["fig1a", "fig2", "table2"], hw_settings, cache_dir=tmp_path)
        assert warm.executed == ()
        for name in ("fig1a", "fig2", "table2"):
            assert canonical(warm.results[name]) == canonical(cold.results[name])

    def test_unknown_experiment_rejected(self, hw_settings):
        with pytest.raises(KeyError, match="fig99"):
            run_pipeline(["fig99"], hw_settings, cache=False)

    def test_backend_change_hits_cache_with_identical_output(self, hw_settings, tmp_path):
        """Throughput knobs must not leak into artifacts: a cache hit under a
        different backend serves the byte-identical result."""
        cold = run_pipeline(
            ["fig1a"], hw_settings.with_overrides(sim_backend="bigint"), cache_dir=tmp_path
        )
        warm = run_pipeline(
            ["fig1a"],
            hw_settings.with_overrides(sim_backend="ndarray", workers=2),
            cache_dir=tmp_path,
        )
        assert warm.executed == ()
        assert canonical(warm.results["fig1a"]) == canonical(cold.results["fig1a"])
        assert "sim_backend" not in cold.results["fig1a"].metadata

    def test_completed_outputs_survive_a_mid_run_crash(self, hw_settings, tmp_path, monkeypatch):
        """Each requested JSON is written as soon as its task finishes."""
        import repro.pipeline.registry as registry_module

        def exploding_table2(*args, **kwargs):
            raise RuntimeError("simulated crash")

        monkeypatch.setattr(registry_module, "run_table2", exploding_table2)
        with pytest.raises(RuntimeError, match="simulated crash"):
            run_pipeline(
                ["fig2", "table2"], hw_settings, cache=False, output_dir=tmp_path
            )
        assert (tmp_path / "fig2.json").exists()  # completed before the crash
        assert not (tmp_path / "table2.json").exists()

    def test_explain_reports_every_task_in_the_closure(self, hw_settings, tmp_path):
        run = run_pipeline(["fig2"], hw_settings, cache_dir=tmp_path)
        report = run.explain()
        for name in ("fig2", "pipeline", "mac", "library_set"):
            assert name in report
        assert "executed" in report
        warm = run_pipeline(["fig2"], hw_settings, cache_dir=tmp_path)
        assert "hit" in warm.explain() and "pruned" in warm.explain()


class TestSchedulerNN:
    """The fig4b regression and model-task scheduling (tiny NN settings)."""

    def test_fig4b_alone_runs_and_caches_table1(self, nn_settings, tmp_path):
        run = run_pipeline(["fig4b"], nn_settings, cache_dir=tmp_path)
        # The old runner silently passed table1=None here; now it is an edge.
        assert "table1" in run.executed_experiments
        assert run.records["table1"].stored
        # fig4b aggregated a real table1, not a recomputed stub: the loss
        # columns must match the cached table1 artifact.
        warm = run_pipeline(["fig4b", "table1"], nn_settings, cache_dir=tmp_path)
        assert warm.executed_experiments == ()
        losses = warm.results["table1"].column_values("accuracy_loss_percent")
        assert warm.results["fig4b"].rows  # one row per aged level
        assert len(losses) == len(nn_settings.aged_levels_mv)

    def test_fig4b_matches_direct_sequential_run(self, nn_settings):
        workspace = ExperimentWorkspace.create(nn_settings)
        table1 = run_table1(workspace=workspace)
        reference = run_fig4b(workspace=workspace, table1=table1)
        run = run_pipeline(["fig4b"], nn_settings, cache=False)
        assert canonical(run.results["fig4b"]) == canonical(reference)

    def test_parallel_nn_run_is_bit_identical_and_overlaps_training(self, nn_settings):
        serial = run_pipeline(["fig4b", "fig1b"], nn_settings, cache=False)
        parallel = run_pipeline(
            ["fig4b", "fig1b"], nn_settings.with_overrides(workers=2), cache=False
        )
        for name in ("fig4b", "fig1b"):
            assert canonical(parallel.results[name]) == canonical(serial.results[name])
        # Model training and the experiments were dispatched, not inlined.
        assert parallel.records["model:squeezenet"].where == "worker"
        assert parallel.records["model:resnet20"].where == "worker"
        assert parallel.records["fig1b"].where == "worker"

    def test_pure_chains_run_inline_with_inner_parallelism(self, nn_settings):
        # model:squeezenet -> table1 -> fig4b is a chain: overlap cannot
        # help, so the pipeline keeps the old inner-sweep parallelism.
        run = run_pipeline(["fig4b"], nn_settings.with_overrides(workers=2), cache=False)
        assert all(run.records[name].where == "inline" for name in run.executed)


class TestExecutorSession:
    def test_serial_session_runs_inline(self):
        executor = ParallelExecutor(workers=0)
        with executor.session(lambda item, payload: item * payload, 10) as session:
            assert not session.parallel
            tickets = [session.submit(i) for i in range(5)]
            results = dict(session.wait_any() for _ in tickets)
        assert results == {i: i * 10 for i in range(5)}

    def test_parallel_session_matches_serial(self):
        executor = ParallelExecutor(workers=2)
        with executor.session(_square_plus, 3) as session:
            tickets = {session.submit(i): i for i in range(8)}
            results = {}
            while session.outstanding:
                ticket, value = session.wait_any()
                results[tickets[ticket]] = value
        assert results == {i: i * i + 3 for i in range(8)}

    def test_wait_any_without_work_raises(self):
        executor = ParallelExecutor(workers=0)
        with executor.session(lambda item, payload: item) as session:
            with pytest.raises(RuntimeError, match="no outstanding"):
                session.wait_any()

    def test_worker_exception_propagates(self):
        executor = ParallelExecutor(workers=2)
        with executor.session(_raise_on_negative, None) as session:
            session.submit(-1)
            with pytest.raises(ValueError, match="negative"):
                session.wait_any()

    def test_unpicklable_task_falls_back_serially_under_spawn(self):
        executor = ParallelExecutor(workers=2, start_method="spawn")
        payload = lambda x: x  # noqa: E731 - deliberately unpicklable payload
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with executor.session(_square_plus, payload) as session:
                assert not session.parallel
        assert any("not picklable" in str(w.message) for w in caught)


def _square_plus(item, payload):
    return item * item + payload


def _raise_on_negative(item, payload):
    if item < 0:
        raise ValueError("negative item")
    return item
