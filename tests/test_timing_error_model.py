"""Tests of the aged-circuit timing-error characterisation (Fig. 1a engine)."""

import pytest

from repro.circuits.mac import build_multiplier
from repro.timing.error_model import characterize_timing_errors, sweep_timing_errors
from repro.timing.sta import StaticTimingAnalyzer


@pytest.fixture(scope="module")
def multiplier6():
    """A 6x6 multiplier: large enough to exhibit MSB-dominated errors, small
    enough for fast Monte-Carlo characterisation."""
    return build_multiplier(6, "array")


class TestCharacterizeTimingErrors:
    def test_fresh_circuit_is_error_free(self, multiplier6, library_set):
        period = StaticTimingAnalyzer(multiplier6, library_set.fresh).critical_path_delay()
        stats = characterize_timing_errors(
            multiplier6, library_set.fresh, period, num_samples=60, rng=0,
            effective_output_width=12,
        )
        assert stats.error_rate == 0.0
        assert stats.mean_error_distance == 0.0
        assert stats.msb_flip_probability == 0.0

    def test_aged_circuit_at_fresh_clock_produces_errors(self, multiplier6, library_set):
        period = StaticTimingAnalyzer(multiplier6, library_set.fresh).critical_path_delay()
        stats = characterize_timing_errors(
            multiplier6, library_set.library(50.0), period, num_samples=200, rng=0,
            effective_output_width=12,
        )
        assert stats.error_rate > 0.0
        assert stats.mean_error_distance > 0.0

    def test_generous_clock_suppresses_errors_even_when_aged(self, multiplier6, library_set):
        aged = library_set.library(50.0)
        generous = StaticTimingAnalyzer(multiplier6, aged).critical_path_delay() + 1.0
        stats = characterize_timing_errors(
            multiplier6, aged, generous, num_samples=60, rng=0, effective_output_width=12
        )
        assert stats.error_rate == 0.0

    def test_bit_flip_probabilities_shape(self, multiplier6, library_set):
        period = StaticTimingAnalyzer(multiplier6, library_set.fresh).critical_path_delay()
        stats = characterize_timing_errors(
            multiplier6, library_set.library(40.0), period, num_samples=80, rng=1,
            effective_output_width=12,
        )
        assert stats.output_width == 12
        assert all(0.0 <= p <= 1.0 for p in stats.bit_flip_probabilities)

    def test_invalid_arguments(self, multiplier6, library_set):
        period = 100.0
        with pytest.raises(ValueError):
            characterize_timing_errors(multiplier6, library_set.fresh, period, num_samples=0)
        with pytest.raises(ValueError):
            characterize_timing_errors(multiplier6, library_set.fresh, 0.0, num_samples=10)
        with pytest.raises(KeyError):
            characterize_timing_errors(
                multiplier6, library_set.fresh, period, num_samples=10, output_bus="product"
            )
        with pytest.raises(ValueError):
            characterize_timing_errors(
                multiplier6, library_set.fresh, period, num_samples=10, msb_count=99
            )


class TestSweep:
    def test_sweep_reports_every_level(self, multiplier6, library_set):
        results = sweep_timing_errors(
            multiplier6,
            library_set,
            levels_mv=(0.0, 30.0, 50.0),
            num_samples=80,
            rng=0,
            effective_output_width=12,
        )
        assert [entry.delta_vth_mv for entry in results] == [0.0, 30.0, 50.0]
        assert results[0].error_rate == 0.0
        # Errors grow (weakly) with aging severity.
        assert results[-1].mean_error_distance >= results[1].mean_error_distance
        assert results[-1].error_rate > 0.0

    def test_sweep_uses_fresh_clock_for_all_levels(self, multiplier6, library_set):
        results = sweep_timing_errors(
            multiplier6, library_set, levels_mv=(0.0, 50.0), num_samples=20, rng=0
        )
        assert results[0].clock_period_ps == results[1].clock_period_ps
