"""Unit tests for repro.utils.rng and repro.utils.tables."""

import numpy as np
import pytest

from repro.utils.rng import derive_rng, make_rng
from repro.utils.tables import format_table


class TestMakeRng:
    def test_none_is_deterministic(self):
        assert make_rng(None).integers(0, 1000) == make_rng(None).integers(0, 1000)

    def test_same_seed_same_stream(self):
        assert make_rng(42).integers(0, 10**6) == make_rng(42).integers(0, 10**6)

    def test_different_seed_different_stream(self):
        draws_a = make_rng(1).integers(0, 10**9, size=4)
        draws_b = make_rng(2).integers(0, 10**9, size=4)
        assert not np.array_equal(draws_a, draws_b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert make_rng(generator) is generator


class TestDeriveRng:
    def test_contexts_are_independent(self):
        a = derive_rng(0, "dataset").integers(0, 10**9, size=4)
        b = derive_rng(0, "weights").integers(0, 10**9, size=4)
        assert not np.array_equal(a, b)

    def test_same_context_is_reproducible(self):
        a = derive_rng(5, "x").integers(0, 10**9, size=4)
        b = derive_rng(5, "x").integers(0, 10**9, size=4)
        assert np.array_equal(a, b)


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 2.25]], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.500" in text and "2.250" in text

    def test_column_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_float_format(self):
        text = format_table(["x"], [[3.14159]], float_format=".1f")
        assert "3.1" in text and "3.14" not in text
