"""Tests of the per-gate aging-scenario API (repro.aging.scenarios).

The two load-bearing properties:

* **Legacy equivalence** — ``UniformAging(x)`` resolves the bit-identical
  per-gate delay table (and therefore bit-identical STA delays and
  Monte-Carlo statistics) to the legacy ``library.aged(x)`` contract, for
  every registered backend × arrival model.
* **Determinism** — scenario resolution is a pure function of (scenario
  fields, netlist structure): pickle round-trips, worker fan-out and chunk
  sizes can never change a sweep's statistics.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.aging.bti import BTIModel
from repro.aging.cell_library import AgingAwareLibrarySet, fresh_library
from repro.aging.scenarios import (
    SCENARIO_KINDS,
    AgingScenario,
    AgingScenarioSet,
    MissionProfile,
    PerCellTypeAging,
    UniformAging,
    VariationAging,
    resolve_gate_delays,
)
from repro.circuits.backends import backend_names, get_backend
from repro.circuits.mac import build_multiplier
from repro.timing.error_model import characterize_timing_errors, sweep_timing_errors
from repro.timing.sta import StaticTimingAnalyzer

LEVELS = (0.0, 20.0, 50.0)


@pytest.fixture(scope="module")
def multiplier6():
    return build_multiplier(6, "array")


def _delay_vector(netlist, table):
    """Delay table as a list aligned with the topological gate order."""
    return [table[gate] for gate in netlist.topological_gates()]


# =====================================================================
# Legacy equivalence: UniformAging == library.aged
# =====================================================================
class TestUniformLegacyEquivalence:
    @pytest.mark.parametrize("level", LEVELS)
    def test_gate_delay_tables_bit_identical(self, multiplier6, library_set, level):
        legacy = resolve_gate_delays(multiplier6.netlist, library_set.library(level))
        scenario = resolve_gate_delays(
            multiplier6.netlist, UniformAging(level, library=library_set.fresh)
        )
        assert _delay_vector(multiplier6.netlist, legacy) == _delay_vector(
            multiplier6.netlist, scenario
        )

    @pytest.mark.parametrize("level", LEVELS)
    def test_sta_delays_bit_identical(self, multiplier6, library_set, level):
        legacy = StaticTimingAnalyzer(multiplier6, library_set.library(level))
        scenario = StaticTimingAnalyzer(
            multiplier6, UniformAging(level, library=library_set.fresh)
        )
        assert legacy.critical_path_delay() == scenario.critical_path_delay()

    @pytest.mark.parametrize("backend_name", backend_names(include_auto=False))
    def test_simulator_delay_tables_per_backend(self, multiplier6, library_set, backend_name):
        backend = get_backend(backend_name)
        for arrival_model in backend.arrival_models:
            legacy = backend.timing_simulator(
                multiplier6.netlist, library_set.library(50.0), arrival_model
            )
            scenario = backend.timing_simulator(
                multiplier6.netlist,
                UniformAging(50.0, library=library_set.fresh),
                arrival_model,
            )
            if hasattr(legacy, "_gate_delay_ps"):
                assert legacy._gate_delay_ps == scenario._gate_delay_ps
            elif hasattr(legacy, "_gate_delay"):
                # The time-wheel engine keeps one float per gate in
                # topological order.
                assert legacy._gate_delay == scenario._gate_delay
            else:  # the lane simulator carries per-level delay vectors
                for left, right in zip(legacy._level_delays, scenario._level_delays):
                    assert (left == right).all()

    @pytest.mark.parametrize("backend_name", backend_names(include_auto=False))
    def test_statistics_bit_identical_per_backend_and_arrival_model(
        self, multiplier6, library_set, backend_name
    ):
        backend = get_backend(backend_name)
        for arrival_model in backend.arrival_models:
            kwargs = dict(
                num_samples=80,
                rng=0,
                effective_output_width=12,
                arrival_model=arrival_model,
                backend=backend_name,
                batch_size=32,
            )
            legacy = sweep_timing_errors(multiplier6, library_set, levels_mv=LEVELS, **kwargs)
            scenario = sweep_timing_errors(
                multiplier6,
                library_set,
                scenarios=[UniformAging(level) for level in LEVELS],
                **kwargs,
            )
            assert legacy == scenario

    def test_characterize_accepts_scenario_sources(self, multiplier6, library_set):
        period = StaticTimingAnalyzer(multiplier6, library_set.fresh).critical_path_delay()
        kwargs = dict(num_samples=60, rng=0, effective_output_width=12)
        legacy = characterize_timing_errors(
            multiplier6, library_set.library(50.0), period, **kwargs
        )
        scenario = characterize_timing_errors(
            multiplier6, UniformAging(50.0, library=library_set.fresh), period, **kwargs
        )
        assert legacy == scenario
        assert scenario.delta_vth_mv == 50.0


# =====================================================================
# The deprecated engine= alias
# =====================================================================
class TestEngineAlias:
    def test_engine_warns_and_matches_backend(self, multiplier6, library_set):
        kwargs = dict(
            levels_mv=(0.0, 50.0),
            num_samples=40,
            rng=0,
            effective_output_width=12,
            arrival_model="transition",
        )
        via_backend = sweep_timing_errors(multiplier6, library_set, backend="bigint", **kwargs)
        with pytest.warns(DeprecationWarning, match="engine"):
            via_engine = sweep_timing_errors(multiplier6, library_set, engine="bigint", **kwargs)
        assert via_backend == via_engine

    def test_characterize_engine_alias(self, multiplier6, library_set):
        period = StaticTimingAnalyzer(multiplier6, library_set.fresh).critical_path_delay()
        with pytest.warns(DeprecationWarning):
            stats = characterize_timing_errors(
                multiplier6,
                library_set.library(50.0),
                period,
                num_samples=30,
                rng=0,
                effective_output_width=12,
                arrival_model="settle",
                engine="bigint",
            )
        assert stats.num_samples == 30

    def test_conflicting_engine_and_backend_rejected(self, multiplier6, library_set):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="not both"):
                characterize_timing_errors(
                    multiplier6,
                    library_set.fresh,
                    100.0,
                    num_samples=4,
                    backend="scalar",
                    engine="bigint",
                )


# =====================================================================
# Scenario semantics
# =====================================================================
class TestMissionProfile:
    def test_reference_mission_hits_the_eol_anchor(self):
        mission = MissionProfile(years=10.0, temperature_c=85.0, duty_cycle=1.0)
        assert mission.nominal_delta_vth_mv == pytest.approx(50.0, rel=1e-9)

    def test_matches_bti_kinetics(self):
        bti = BTIModel()
        mission = MissionProfile(years=3.0, temperature_c=60.0, duty_cycle=0.8)
        expected = bti.delta_vth_mv(3.0, temperature_k=60.0 + 273.15, duty_cycle=0.8)
        assert mission.nominal_delta_vth_mv == expected

    def test_delays_equal_equivalent_uniform_scenario(self, multiplier6):
        mission = MissionProfile(years=7.0)
        uniform = UniformAging(mission.nominal_delta_vth_mv)
        assert _delay_vector(
            multiplier6.netlist, mission.gate_delays_ps(multiplier6.netlist)
        ) == _delay_vector(multiplier6.netlist, uniform.gate_delays_ps(multiplier6.netlist))

    def test_cooler_missions_age_less(self, multiplier6):
        hot = MissionProfile(years=5.0, temperature_c=105.0)
        cool = MissionProfile(years=5.0, temperature_c=45.0)
        assert cool.nominal_delta_vth_mv < hot.nominal_delta_vth_mv
        hot_delay = StaticTimingAnalyzer(multiplier6, hot).critical_path_delay()
        cool_delay = StaticTimingAnalyzer(multiplier6, cool).critical_path_delay()
        assert cool_delay < hot_delay

    def test_invalid_missions_rejected(self):
        with pytest.raises(ValueError):
            MissionProfile(years=-1.0)
        with pytest.raises(ValueError):
            MissionProfile(years=1.0, duty_cycle=0.0)


class TestPerCellTypeAging:
    def test_only_listed_families_degrade(self, multiplier6, library_set):
        scenario = PerCellTypeAging({"XOR2": 50.0}, default_mv=0.0)
        table = scenario.gate_delays_ps(multiplier6.netlist, library_set.fresh)
        fresh = resolve_gate_delays(multiplier6.netlist, library_set.fresh)
        aged = resolve_gate_delays(multiplier6.netlist, library_set.library(50.0))
        for gate in multiplier6.netlist.topological_gates():
            expected = aged[gate] if gate.cell_name == "XOR2" else fresh[gate]
            assert table[gate] == expected

    def test_mapping_normalised_and_sorted(self):
        from_dict = PerCellTypeAging({"NAND2": 10.0, "AND2": 20.0})
        from_items = PerCellTypeAging((("NAND2", 10.0), ("AND2", 20.0)))
        assert from_dict == from_items
        assert from_dict.levels_mv == (("AND2", 20.0), ("NAND2", 10.0))
        assert from_dict.level_for("NAND2") == 10.0
        assert from_dict.level_for("XOR2") == 0.0

    def test_uniform_degenerate_case_matches_uniform(self, multiplier6):
        degenerate = PerCellTypeAging((), default_mv=30.0)
        uniform = UniformAging(30.0)
        assert _delay_vector(
            multiplier6.netlist, degenerate.gate_delays_ps(multiplier6.netlist)
        ) == _delay_vector(multiplier6.netlist, uniform.gate_delays_ps(multiplier6.netlist))

    def test_validation(self):
        with pytest.raises(ValueError):
            PerCellTypeAging({"INV": -1.0})
        with pytest.raises(ValueError):
            PerCellTypeAging((), default_mv=-2.0)
        with pytest.raises(ValueError):
            PerCellTypeAging((("INV", 1.0), ("INV", 2.0)))


class TestVariationAging:
    def test_sigma_zero_matches_uniform(self, multiplier6):
        variation = VariationAging(nominal_mv=40.0, sigma_mv=0.0, seed=5)
        uniform = UniformAging(40.0)
        assert _delay_vector(
            multiplier6.netlist, variation.gate_delays_ps(multiplier6.netlist)
        ) == _delay_vector(multiplier6.netlist, uniform.gate_delays_ps(multiplier6.netlist))

    def test_resolution_deterministic_and_pickle_stable(self, multiplier6):
        scenario = VariationAging(nominal_mv=30.0, sigma_mv=6.0, seed=11)
        clone = pickle.loads(pickle.dumps(scenario))
        original = _delay_vector(
            multiplier6.netlist, scenario.gate_delays_ps(multiplier6.netlist)
        )
        repeated = _delay_vector(
            multiplier6.netlist, scenario.gate_delays_ps(multiplier6.netlist)
        )
        round_tripped = _delay_vector(
            multiplier6.netlist, clone.gate_delays_ps(multiplier6.netlist)
        )
        assert original == repeated == round_tripped

    def test_pickled_netlist_resolves_identically(self, multiplier6):
        # Sweep workers receive the netlist through pickle; the draws are
        # keyed by topological gate index, so the reconstructed graph must
        # resolve the same per-gate deltas.
        scenario = VariationAging(nominal_mv=30.0, sigma_mv=6.0, seed=11)
        clone_unit = pickle.loads(pickle.dumps(multiplier6))
        original = scenario.gate_delta_vth_mv(multiplier6.netlist)
        reconstructed = scenario.gate_delta_vth_mv(clone_unit.netlist)
        assert (original == reconstructed).all()

    def test_different_seeds_differ(self, multiplier6):
        a = VariationAging(30.0, 6.0, seed=0).gate_delays_ps(multiplier6.netlist)
        b = VariationAging(30.0, 6.0, seed=1).gate_delays_ps(multiplier6.netlist)
        assert _delay_vector(multiplier6.netlist, a) != _delay_vector(multiplier6.netlist, b)

    def test_draws_clipped_non_negative(self, multiplier6):
        deltas = VariationAging(nominal_mv=0.0, sigma_mv=50.0, seed=2).gate_delta_vth_mv(
            multiplier6.netlist
        )
        assert (deltas >= 0.0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            VariationAging(nominal_mv=-1.0)
        with pytest.raises(ValueError):
            VariationAging(nominal_mv=1.0, sigma_mv=-1.0)
        with pytest.raises(ValueError):
            VariationAging(nominal_mv=1.0, seed=-1)

    def test_draws_are_absolute_even_against_an_aged_base(self, multiplier6, library_set):
        """Regression: like every other family, the per-gate ΔVth draws are
        absolute shifts — an aged base library must not compound its own
        degradation factor under the draw's."""
        scenario = VariationAging(nominal_mv=30.0, sigma_mv=6.0, seed=4)
        via_fresh = scenario.gate_delays_ps(multiplier6.netlist, library_set.fresh)
        via_aged = scenario.gate_delays_ps(multiplier6.netlist, library_set.library(50.0))
        assert _delay_vector(multiplier6.netlist, via_fresh) == _delay_vector(
            multiplier6.netlist, via_aged
        )


# =====================================================================
# Sweep determinism across workers / chunk sizes (the acceptance property)
# =====================================================================
class TestScenarioSweepDeterminism:
    @pytest.fixture(scope="class")
    def mixed_axis(self):
        return [
            MissionProfile(years=7.0),
            PerCellTypeAging({"XOR2": 50.0, "XNOR2": 50.0}, default_mv=25.0),
            VariationAging(nominal_mv=40.0, sigma_mv=8.0, seed=3),
        ]

    @pytest.mark.parametrize("workers,chunk_size", [(1, None), (2, 1), (4, 2)])
    def test_workers_and_chunking_bit_identical(
        self, multiplier6, library_set, mixed_axis, workers, chunk_size
    ):
        kwargs = dict(
            scenarios=mixed_axis,
            num_samples=120,
            rng=0,
            effective_output_width=12,
            arrival_model="transition",
            samples_per_shard=30,
        )
        serial = sweep_timing_errors(multiplier6, library_set, **kwargs)
        parallel = sweep_timing_errors(
            multiplier6, library_set, workers=workers, chunk_size=chunk_size, **kwargs
        )
        assert serial == parallel

    def test_scenario_order_preserved(self, multiplier6, library_set, mixed_axis):
        results = sweep_timing_errors(
            multiplier6,
            library_set,
            scenarios=mixed_axis,
            num_samples=40,
            rng=0,
            effective_output_width=12,
            arrival_model="transition",
        )
        assert [stat.delta_vth_mv for stat in results] == [
            scenario.nominal_delta_vth_mv for scenario in mixed_axis
        ]

    def test_scenario_set_as_axis(self, multiplier6, library_set):
        via_levels = sweep_timing_errors(
            multiplier6,
            library_set,
            levels_mv=LEVELS,
            num_samples=40,
            rng=0,
            effective_output_width=12,
            arrival_model="transition",
        )
        via_set = sweep_timing_errors(
            multiplier6,
            AgingScenarioSet.uniform(LEVELS, library_set.fresh),
            num_samples=40,
            rng=0,
            effective_output_width=12,
            arrival_model="transition",
        )
        assert via_levels == via_set

    def test_empty_scenarios_rejected(self, multiplier6, library_set):
        with pytest.raises(ValueError, match="scenarios"):
            sweep_timing_errors(multiplier6, library_set, scenarios=[], num_samples=4)

    def test_bound_scenario_library_sets_the_clock_reference(self, multiplier6):
        """Regression: with no library_set, the capture clock must come from
        the characterisation the bound scenarios resolve against — a slower
        custom library's fresh scenario is error-free at its own period."""
        from dataclasses import replace as dc_replace

        from repro.aging.cell_library import CellLibrary, fresh_library

        default = fresh_library()
        slow = CellLibrary(
            "slow",
            {
                name: dc_replace(
                    default.cell(name),
                    intrinsic_delay_ps=default.cell(name).intrinsic_delay_ps * 2.0,
                    load_delay_ps=default.cell(name).load_delay_ps * 2.0,
                )
                for name in default.cell_names()
            },
        )
        results = sweep_timing_errors(
            multiplier6,
            scenarios=[UniformAging(0.0, library=slow)],
            num_samples=30,
            rng=0,
            effective_output_width=12,
            arrival_model="transition",
        )
        expected_period = StaticTimingAnalyzer(multiplier6, slow).critical_path_delay()
        assert results[0].clock_period_ps == expected_period
        assert results[0].error_rate == 0.0

    def test_non_fresh_bound_scenarios_rejected_without_library_set(
        self, multiplier6, library_set
    ):
        aged_bound = UniformAging(10.0, library=library_set.library(50.0))
        with pytest.raises(ValueError, match="fresh"):
            sweep_timing_errors(multiplier6, scenarios=[aged_bound], num_samples=4)


# =====================================================================
# Cache-key fields and the scenario axis plumbing
# =====================================================================
class TestKeyFieldsAndAxis:
    def test_key_fields_json_stable(self):
        scenarios: list[AgingScenario] = [
            UniformAging(30.0),
            MissionProfile(years=7.0, temperature_c=85.0, duty_cycle=0.9),
            PerCellTypeAging({"XOR2": 50.0}, default_mv=10.0),
            VariationAging(30.0, 5.0, seed=7),
        ]
        for scenario in scenarios:
            token = scenario.cache_token()
            assert json.loads(token) == scenario.key_fields()
            assert scenario.cache_token() == token  # stable across calls
            assert scenario.key_fields()["kind"] == scenario.kind
            assert scenario.kind in SCENARIO_KINDS

    def test_key_fields_ignore_the_bound_library(self):
        bound = UniformAging(30.0, library=fresh_library())
        unbound = UniformAging(30.0)
        assert bound.key_fields() == unbound.key_fields()
        assert bound == unbound

    def test_library_set_scenario_bridge(self, library_set):
        axis = library_set.scenarios()
        assert isinstance(axis, AgingScenarioSet)
        assert len(axis) == len(library_set.levels_mv)
        assert [s.nominal_delta_vth_mv for s in axis] == list(library_set.levels_mv)
        assert axis.fresh is library_set.fresh
        single = library_set.scenario(20.0)
        assert isinstance(single, UniformAging)
        assert single.library is library_set.fresh

    def test_scenario_set_requires_fresh_base(self, library_set):
        with pytest.raises(ValueError, match="fresh"):
            AgingScenarioSet([UniformAging(10.0)], library_set.library(50.0))
        with pytest.raises(ValueError):
            AgingScenarioSet([])
        with pytest.raises(TypeError):
            AgingScenarioSet([object()])  # type: ignore[list-item]

    def test_resolve_rejects_unknown_sources(self, multiplier6):
        with pytest.raises(TypeError, match="delay source"):
            resolve_gate_delays(multiplier6.netlist, object())  # type: ignore[arg-type]


# =====================================================================
# Settings-level scenario axes (what the CLI --scenario knob selects)
# =====================================================================
class TestSettingsScenarios:
    def test_every_kind_builds_an_axis(self):
        from repro.experiments.settings import ExperimentSettings

        for kind in SCENARIO_KINDS:
            settings = ExperimentSettings.fast(scenario=kind)
            axis = settings.aging_scenarios()
            assert axis, kind
            assert all(scenario.kind == kind for scenario in axis)

    def test_uniform_axis_mirrors_aging_levels(self):
        from repro.experiments.settings import ExperimentSettings

        settings = ExperimentSettings.fast(aging_levels_mv=(0.0, 25.0))
        axis = settings.aging_scenarios()
        assert [s.nominal_delta_vth_mv for s in axis] == [0.0, 25.0]

    def test_axes_sort_ascending_like_the_legacy_sweep(self):
        """Regression: the legacy levels_mv path sorted ascending, so the
        settings axes must too — unsorted tuples keep fig1a's row order
        bit-identical to the pre-scenario implementation."""
        from repro.experiments.settings import ExperimentSettings

        unsorted_levels = (50.0, 0.0, 30.0)
        for kind in ("uniform", "per_cell_type", "variation"):
            axis = ExperimentSettings.fast(
                scenario=kind, aging_levels_mv=unsorted_levels
            ).aging_scenarios()
            nominals = [s.nominal_delta_vth_mv for s in axis]
            assert nominals == sorted(nominals)
        mission = ExperimentSettings.fast(
            scenario="mission", mission_years=(10.0, 0.0, 3.0)
        ).aging_scenarios()
        assert [s.years for s in mission] == [0.0, 3.0, 10.0]

    def test_unknown_kind_rejected(self):
        from repro.experiments.settings import ExperimentSettings

        with pytest.raises(ValueError, match="scenario"):
            ExperimentSettings.fast(scenario="cosmic").aging_scenarios()
