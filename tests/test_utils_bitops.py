"""Unit tests for repro.utils.bitops."""

import numpy as np
import pytest

from repro.utils import bitops

#: Lane counts straddling every machine-word boundary condition.
EDGE_LANE_COUNTS = (0, 1, 63, 64, 65)


class TestIntBitsRoundTrip:
    def test_int_to_bits_lsb_first(self):
        assert bitops.int_to_bits(0b1011, 4) == [1, 1, 0, 1]

    def test_bits_to_int(self):
        assert bitops.bits_to_int([1, 1, 0, 1]) == 0b1011

    def test_round_trip(self):
        for value in (0, 1, 37, 255):
            assert bitops.bits_to_int(bitops.int_to_bits(value, 8)) == value

    def test_value_too_large_raises(self):
        with pytest.raises(ValueError):
            bitops.int_to_bits(16, 4)

    def test_negative_value_raises(self):
        with pytest.raises(ValueError):
            bitops.int_to_bits(-1, 4)

    def test_invalid_bit_raises(self):
        with pytest.raises(ValueError):
            bitops.bits_to_int([0, 2])


class TestMaxUnsigned:
    def test_values(self):
        assert bitops.max_unsigned(0) == 0
        assert bitops.max_unsigned(1) == 1
        assert bitops.max_unsigned(8) == 255
        assert bitops.max_unsigned(22) == 4194303

    def test_negative_width_raises(self):
        with pytest.raises(ValueError):
            bitops.max_unsigned(-1)


class TestBitFlip:
    def test_flip_sets_and_clears(self):
        assert bitops.bit_flip(0b0000, 2) == 0b0100
        assert bitops.bit_flip(0b0100, 2) == 0b0000

    def test_flip_msb_of_product(self):
        assert bitops.bit_flip(0, 15) == 1 << 15

    def test_negative_bit_raises(self):
        with pytest.raises(ValueError):
            bitops.bit_flip(1, -1)


class TestSlicesAndMasks:
    def test_bit_slice(self):
        assert bitops.bit_slice(0b110110, 1, 4) == 0b011

    def test_bit_slice_invalid(self):
        with pytest.raises(ValueError):
            bitops.bit_slice(3, 4, 2)

    def test_mask_lsbs(self):
        assert bitops.mask_lsbs(0b11111111, 3) == 0b11111000

    def test_mask_msbs(self):
        assert bitops.mask_msbs(0b11111111, 3, 8) == 0b00011111

    def test_mask_msbs_out_of_range(self):
        with pytest.raises(ValueError):
            bitops.mask_msbs(1, 9, 8)


class TestHammingAndPopcount:
    def test_hamming_distance(self):
        assert bitops.hamming_distance(0b1010, 0b0110) == 2
        assert bitops.hamming_distance(7, 7) == 0

    def test_count_set_bits(self):
        assert bitops.count_set_bits(0) == 0
        assert bitops.count_set_bits(0b1011) == 3

    def test_count_negative_raises(self):
        with pytest.raises(ValueError):
            bitops.count_set_bits(-3)


class TestLaneWordConversions:
    """Round trips of the lane-word <-> ndarray conversions at word edges."""

    @pytest.mark.parametrize("lanes", EDGE_LANE_COUNTS)
    def test_word_bits_round_trip(self, lanes):
        rng = np.random.default_rng(lanes)
        bits = rng.integers(0, 2, size=lanes).astype(bool)
        word = bitops.lane_bits_to_word(bits)
        assert word >> max(lanes, 1) == 0  # no stray bits past the last lane
        recovered = bitops.word_to_lane_bits(word, lanes)
        assert recovered.shape == (lanes,)
        assert (recovered == bits).all()

    @pytest.mark.parametrize("lanes", EDGE_LANE_COUNTS)
    def test_word_array_round_trip(self, lanes):
        rng = np.random.default_rng(100 + lanes)
        word = int(bitops.lane_bits_to_word(rng.integers(0, 2, size=lanes).astype(bool)))
        array = bitops.word_to_lane_array(word, lanes)
        assert array.dtype == np.uint64
        assert array.shape == (bitops.lane_word_count(lanes),)
        assert bitops.lane_array_to_word(array, lanes) == word

    @pytest.mark.parametrize("lanes", EDGE_LANE_COUNTS)
    def test_array_bits_round_trip(self, lanes):
        rng = np.random.default_rng(200 + lanes)
        bits = rng.integers(0, 2, size=(3, lanes)).astype(bool)
        packed = bitops.bits_to_lane_array(bits)
        assert packed.dtype == np.uint64
        assert packed.shape == (3, bitops.lane_word_count(lanes))
        assert (bitops.lane_array_to_bits(packed, lanes) == bits).all()

    def test_all_ones_at_word_boundaries(self):
        for lanes in (1, 63, 64, 65):
            word = (1 << lanes) - 1
            assert bitops.word_to_lane_bits(word, lanes).all()
            array = bitops.word_to_lane_array(word, lanes)
            assert bitops.lane_array_popcount(array, lanes) == lanes

    def test_dead_tail_lanes_are_discarded(self):
        # lane_array_to_word must mask garbage past the last live lane.
        array = np.array([np.uint64(0xFFFFFFFFFFFFFFFF)])
        assert bitops.lane_array_to_word(array, 3) == 0b111
        assert bitops.lane_array_popcount(array, 3) == 3

    def test_word_count(self):
        assert [bitops.lane_word_count(n) for n in EDGE_LANE_COUNTS] == [0, 1, 1, 1, 2]
        with pytest.raises(ValueError):
            bitops.lane_word_count(-1)

    def test_count_set_bits_matches_int_bit_count(self):
        for value in (0, 1, (1 << 63) | 1, (1 << 200) - 1):
            assert bitops.count_set_bits(value) == value.bit_count()


class TestTwosComplement:
    def test_encode_decode(self):
        for value in (-128, -1, 0, 1, 127):
            encoded = bitops.to_twos_complement(value, 8)
            assert 0 <= encoded <= 255
            assert bitops.sign_extend(encoded, 8) == value

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            bitops.to_twos_complement(128, 8)

    def test_sign_extend_rejects_wide_patterns(self):
        with pytest.raises(ValueError):
            bitops.sign_extend(256, 8)
