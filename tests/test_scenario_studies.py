"""Tests of the scenario-aware core and the accelerator-scale scenario studies.

Covers the PR's contracts:

* uniform scenarios are bit-identical to the legacy ΔVth-float path through
  planning, feasibility search and guardband sizing,
* mission-profile guardbands match the uniform guardband at the
  BTI-equivalent ΔVth level,
* timing caches normalise ``-0.0``/int/float aging points to one engine,
* ``analyze_guardband``/``scenario_grid`` reject conflicting building blocks,
* the Fig. 4a trajectories share one axis order,
* ``energy_study`` routes every level (including the fresh one) through the
  planner,
* the scenario-aware energy model prices uniform scenarios identically to
  the aged library, and
* the per-PE array map and the ``scenario_sweep`` pipeline family are
  deterministic: bit-identical across worker counts, warm-cache reruns that
  execute zero task bodies, and axis extensions that run only new points.
"""

from __future__ import annotations

import json

import pytest

from repro.aging.bti import AgingTimeline
from repro.aging.scenarios import MissionProfile, UniformAging
from repro.core.guardband import (
    analyze_guardband,
    baseline_delay_trajectory,
    compensated_delay_trajectory,
)
from repro.core.pipeline import DeviceToSystemPipeline
from repro.core.scenario_grid import scenario_grid
from repro.core.timing_analysis import CompressionTimingAnalyzer
from repro.experiments.reporting import _jsonify
from repro.experiments.runner import EXPERIMENTS
from repro.experiments.scenario_study import run_scenario_sweep
from repro.experiments.settings import ExperimentSettings
from repro.npu.scenario_map import array_scenario_map, pe_seed
from repro.npu.systolic import SystolicArray
from repro.pipeline import EXPERIMENT_NAMES, build_experiment_graph, run_pipeline
from repro.power.energy import EnergyModel
from repro.power.switching import estimate_switching_activity

LEVELS = (0.0, 10.0, 30.0, 50.0)


@pytest.fixture(scope="module")
def device_pipeline(small_mac, library_set) -> DeviceToSystemPipeline:
    return DeviceToSystemPipeline(
        mac=small_mac,
        library_set=library_set,
        timeline=AgingTimeline(levels_mv=LEVELS),
        max_alpha=3,
        max_beta=3,
    )


@pytest.fixture(scope="module")
def analyzer(device_pipeline) -> CompressionTimingAnalyzer:
    return device_pipeline.timing_analyzer


class TestUniformScenarioBitIdentity:
    def test_scenario_grid_matches_legacy_level_plan(self, device_pipeline, analyzer):
        plans = scenario_grid(
            [UniformAging(level) for level in LEVELS],
            analyzer=analyzer,
            max_alpha=3,
            max_beta=3,
        )
        for level, plan in zip(LEVELS, plans):
            legacy = device_pipeline.plan_level(level)
            assert plan.timing == legacy.timing
            assert plan.baseline_delay_ps == legacy.baseline_delay_ps
            assert plan.nominal_delta_vth_mv == legacy.delta_vth_mv

    def test_feasible_compressions_bit_identical(self, analyzer):
        as_float = analyzer.feasible_compressions(30.0, max_alpha=3, max_beta=3)
        as_scenario = analyzer.feasible_compressions(
            UniformAging(30.0), max_alpha=3, max_beta=3
        )
        assert as_float == as_scenario

    def test_guardband_bit_identical(self, analyzer):
        as_float = analyze_guardband(end_of_life_mv=50.0, analyzer=analyzer)
        as_scenario = analyze_guardband(end_of_life_mv=UniformAging(50.0), analyzer=analyzer)
        assert as_float == as_scenario


class TestMissionGuardband:
    def test_matches_uniform_at_bti_equivalent_level(self, analyzer):
        mission = MissionProfile(years=7.0, temperature_c=105.0)
        at_mission = analyze_guardband(end_of_life_mv=mission, analyzer=analyzer)
        at_uniform = analyze_guardband(
            end_of_life_mv=mission.nominal_delta_vth_mv, analyzer=analyzer
        )
        assert at_mission.end_of_life_delay_ps == at_uniform.end_of_life_delay_ps
        assert at_mission.guardband_percent == at_uniform.guardband_percent
        assert at_mission.end_of_life_mv == mission.nominal_delta_vth_mv


class TestAgingPointNormalization:
    def test_minus_zero_int_and_float_share_one_engine(self, small_mac, library_set):
        analyzer = CompressionTimingAnalyzer(small_mac, library_set)
        delays = {analyzer.delay_ps(level, None) for level in (0.0, -0.0, 0)}
        assert len(delays) == 1
        assert len(analyzer._analyzers) == 1

    def test_plan_cache_shares_int_and_float_levels(self, small_mac, library_set):
        pipeline = DeviceToSystemPipeline(
            mac=small_mac, library_set=library_set, max_alpha=3, max_beta=3
        )
        assert pipeline.plan_level(10) == pipeline.plan_level(10.0)
        assert len(pipeline._plans) == 1


class TestConflictingBuildingBlocks:
    def test_analyze_guardband_rejects_analyzer_plus_parts(
        self, small_mac, library_set, analyzer
    ):
        with pytest.raises(ValueError, match="not both"):
            analyze_guardband(mac=small_mac, analyzer=analyzer)
        with pytest.raises(ValueError, match="not both"):
            analyze_guardband(library_set=library_set, analyzer=analyzer)

    def test_scenario_grid_rejects_analyzer_plus_parts(self, small_mac, analyzer):
        with pytest.raises(ValueError, match="not both"):
            scenario_grid([0.0], mac=small_mac, analyzer=analyzer)


class TestTrajectoryAxisOrder:
    def test_shuffled_axis_keeps_both_curves_aligned(self, analyzer):
        levels = [50.0, 0.0, 30.0]
        baseline = baseline_delay_trajectory(analyzer, levels)
        selections = {
            level: analyzer.select_timing(level, max_alpha=3, max_beta=3).choice
            for level in levels
        }
        compensated = compensated_delay_trajectory(analyzer, selections)
        assert [axis for axis, _ in baseline] == levels
        assert [axis for axis, _ in compensated] == levels


class TestEnergyStudyPlannerRouting:
    def test_every_level_routes_through_the_planner(self, device_pipeline, monkeypatch):
        planned = []
        original = device_pipeline.plan_level
        monkeypatch.setattr(
            device_pipeline,
            "plan_level",
            lambda level: planned.append(level) or original(level),
        )
        study = device_pipeline.energy_study(levels_mv=(0.0, 30.0), num_transitions=20)
        assert planned == [0.0, 30.0]
        # The fresh level still selects the uncompressed point, so routing it
        # through the planner preserved the old study's numbers.
        assert study[0].delta_vth_mv == 0.0
        assert original(0.0).compression.alpha == 0
        assert original(0.0).compression.beta == 0


class TestScenarioAwareEnergyModel:
    def test_uniform_scenario_prices_like_the_aged_library(self, small_mac, library_set):
        activity = estimate_switching_activity(small_mac, num_transitions=50, rng=3)
        from_library = EnergyModel(library_set.library(30.0)).energy_from_activity(
            small_mac, activity, clock_period_ps=500.0
        )
        from_scenario = EnergyModel(
            UniformAging(30.0, library=library_set.fresh)
        ).energy_from_activity(small_mac, activity, clock_period_ps=500.0)
        assert from_library == from_scenario

    def test_rejects_non_delay_sources(self):
        with pytest.raises(TypeError, match="CellLibrary or AgingScenario"):
            EnergyModel(42.0)


class TestArrayScenarioMap:
    def test_pe_seed_is_a_pure_position_function(self):
        assert pe_seed(0, 1, 2) == pe_seed(0, 1, 2)
        assert pe_seed(0, 1, 2) != pe_seed(0, 2, 1)
        assert pe_seed(0, 1, 2) != pe_seed(1, 1, 2)

    def test_bit_identical_across_workers_and_chunk_sizes(self, small_mac, fresh_cells):
        array = SystolicArray(rows=2, cols=3)
        kwargs = dict(
            nominal_mv=30.0,
            sigma_mv=5.0,
            seed=1,
            mac=small_mac,
            library=fresh_cells,
            num_transitions=40,
        )
        serial = array_scenario_map(array, workers=0, batched=False, **kwargs)
        for workers, chunk_size in ((2, 1), (2, 4)):
            parallel = array_scenario_map(
                array, workers=workers, chunk_size=chunk_size, batched=False, **kwargs
            )
            assert parallel.records == serial.records

    def test_batched_path_bit_identical_to_scalar(self, small_mac, fresh_cells):
        from repro.circuits.backends import levelized_graph

        array = SystolicArray(rows=3, cols=3)
        kwargs = dict(
            nominal_mv=25.0,
            sigma_mv=5.0,
            seed=3,
            mac=small_mac,
            library=fresh_cells,
            num_transitions=30,
        )
        scalar = array_scenario_map(array, batched=False, **kwargs)
        graph = levelized_graph(small_mac.netlist)
        before = graph.max_plus_passes
        batched = array_scenario_map(array, batched=True, **kwargs)
        # 9 PEs, one corner-batched max-plus traversal for the whole array.
        assert graph.max_plus_passes - before == 1
        assert batched.records == scalar.records
        for grid in (
            "delay_grid_ps",
            "energy_grid_fj",
            "margin_grid_mv",
            "lifetime_grid_years",
        ):
            assert getattr(batched, grid)().tobytes() == getattr(scalar, grid)().tobytes()

    def test_grids_margins_and_lifetimes(self, small_mac, fresh_cells):
        array = SystolicArray(rows=2, cols=2)
        tight = array_scenario_map(
            array, nominal_mv=30.0, seed=2, mac=small_mac, library=fresh_cells,
            num_transitions=30,
        )
        assert tight.delay_grid_ps().shape == (2, 2)
        assert tight.worst_pe.delay_ps == tight.delay_grid_ps().max()
        # The clock defaults to the fresh critical path, which cannot absorb
        # a 30 mV nominal shift: every PE violates and lifetimes collapse.
        assert tight.timing_yield == 0.0
        assert tight.array_lifetime_years == 0.0
        relaxed = array_scenario_map(
            array, nominal_mv=30.0, seed=2, mac=small_mac, library=fresh_cells,
            num_transitions=30, clock_period_ps=tight.fresh_delay_ps * 2.0,
        )
        assert relaxed.timing_yield == 1.0
        assert (relaxed.margin_grid_mv() > 0.0).all()
        assert relaxed.array_lifetime_years > 0.0


def sweep_settings(cache_dir, **overrides) -> ExperimentSettings:
    base = dict(
        scenario="mission",
        mission_years=(0.0, 3.0),
        max_alpha=3,
        max_beta=3,
        cache_dir=cache_dir,
    )
    base.update(overrides)
    return ExperimentSettings.fast(**base)


def canonical(result) -> str:
    return json.dumps(result.to_dict(), indent=2, default=_jsonify)


class TestScenarioSweepPipeline:
    def test_registered_as_experiment_and_pipeline_task(self):
        assert "scenario_sweep" in EXPERIMENTS
        assert "scenario_sweep" in EXPERIMENT_NAMES

    def test_point_family_follows_the_scenario_axis(self, tmp_path):
        settings = sweep_settings(tmp_path)
        graph = build_experiment_graph(settings)
        points = [name for name in graph.names if name.startswith("scenario_point:")]
        assert len(points) == 2
        assert set(graph["scenario_sweep"].depends) == set(points)

    def test_duplicate_axis_points_collapse(self, tmp_path):
        settings = ExperimentSettings.fast(
            aging_levels_mv=(0.0, 30.0, 30.0), max_alpha=3, max_beta=3,
            cache_dir=tmp_path,
        )
        graph = build_experiment_graph(settings)
        points = [name for name in graph.names if name.startswith("scenario_point:")]
        assert len(points) == 2
        assert len(run_scenario_sweep(settings).rows) == 2

    def test_pipeline_matches_direct_and_warm_rerun_executes_nothing(self, tmp_path):
        settings = sweep_settings(tmp_path)
        direct = run_scenario_sweep(settings)
        cold = run_pipeline(["scenario_sweep"], settings=settings)
        assert canonical(cold.results["scenario_sweep"]) == canonical(direct)
        assert "scenario_sweep" in cold.executed
        warm = run_pipeline(["scenario_sweep"], settings=settings)
        assert warm.executed == ()
        assert canonical(warm.results["scenario_sweep"]) == canonical(direct)

    def test_axis_extension_runs_only_the_new_points(self, tmp_path):
        settings = sweep_settings(tmp_path)
        run_pipeline(["scenario_sweep"], settings=settings)
        extended = sweep_settings(tmp_path, mission_years=(0.0, 3.0, 7.0))
        run = run_pipeline(["scenario_sweep"], settings=extended)
        executed_points = [
            name for name in run.executed if name.startswith("scenario_point:")
        ]
        assert len(executed_points) == 1
        assert len(run.results["scenario_sweep"].rows) == 3
