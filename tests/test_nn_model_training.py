"""Tests of the model container, training loop, dataset and model zoo."""

import numpy as np
import pytest

from repro.nn.datasets import SyntheticImageDataset
from repro.nn.model import Model
from repro.nn.layers import Dense, ReLU
from repro.nn.training import SGDTrainer
from repro.nn.zoo import (
    FIG1B_NETWORKS,
    TABLE1_NETWORKS,
    available_architectures,
    build_model,
    display_name,
    get_pretrained,
)
from tests.conftest import build_tiny_flat_model, build_tiny_model


class TestModel:
    def test_forward_shape(self, tiny_dataset):
        model = build_tiny_model(tiny_dataset.num_classes, tiny_dataset.image_size)
        logits = model.forward(tiny_dataset.x_test[:5])
        assert logits.shape == (5, tiny_dataset.num_classes)

    def test_layer_names_are_unique(self, tiny_dataset):
        model = build_tiny_model(tiny_dataset.num_classes, tiny_dataset.image_size)
        names = [name for name, _ in model.named_layers()]
        assert len(names) == len(set(names))

    def test_parameter_count_positive(self):
        model = build_tiny_model()
        assert model.parameter_count() > 0
        assert len(model.parameters()) >= 6

    def test_predict_and_accuracy(self, tiny_model, tiny_dataset):
        predictions = tiny_model.predict(tiny_dataset.x_test)
        assert predictions.shape == (tiny_dataset.x_test.shape[0],)
        accuracy = tiny_model.accuracy(tiny_dataset.x_test, tiny_dataset.y_test)
        assert 0.0 <= accuracy <= 1.0

    def test_predict_proba_rows_sum_to_one(self, tiny_model, tiny_dataset):
        probabilities = tiny_model.predict_proba(tiny_dataset.x_test[:8])
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_state_dict_round_trip(self, tiny_dataset):
        source = build_tiny_model(tiny_dataset.num_classes, tiny_dataset.image_size, rng=11)
        target = build_tiny_model(tiny_dataset.num_classes, tiny_dataset.image_size, rng=99)
        target.load_state_dict(source.state_dict())
        x = tiny_dataset.x_test[:4]
        assert np.allclose(source.forward(x), target.forward(x))

    def test_state_dict_mismatch_detected(self, tiny_dataset):
        source = build_tiny_model(tiny_dataset.num_classes, tiny_dataset.image_size)
        other = build_tiny_flat_model(tiny_dataset.num_classes, tiny_dataset.image_size)
        with pytest.raises(ValueError):
            other.load_state_dict(source.state_dict())

    def test_save_and_load(self, tmp_path, tiny_dataset):
        source = build_tiny_model(tiny_dataset.num_classes, tiny_dataset.image_size, rng=17)
        path = tmp_path / "model.npz"
        source.save(path)
        clone = build_tiny_model(tiny_dataset.num_classes, tiny_dataset.image_size, rng=23)
        clone.load(path)
        x = tiny_dataset.x_test[:4]
        assert np.allclose(source.forward(x), clone.forward(x))

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            Model([], name="empty")


class TestTraining:
    def test_training_reduces_loss_and_learns(self, tiny_dataset):
        model = build_tiny_model(tiny_dataset.num_classes, tiny_dataset.image_size)
        trainer = SGDTrainer(epochs=8, batch_size=32, learning_rate=0.1)
        history = trainer.fit(
            model,
            tiny_dataset.x_train,
            tiny_dataset.y_train,
            x_val=tiny_dataset.x_test,
            y_val=tiny_dataset.y_test,
            rng=0,
        )
        assert history.train_loss[-1] < history.train_loss[0]
        chance = 1.0 / tiny_dataset.num_classes
        assert history.final_train_accuracy > chance + 0.15
        assert history.final_validation_accuracy > chance

    def test_dense_only_model_trains(self, tiny_dataset):
        flat_train = tiny_dataset.x_train.reshape(tiny_dataset.x_train.shape[0], -1)
        model = Model(
            [Dense(flat_train.shape[1], 16, rng=0), ReLU(), Dense(16, tiny_dataset.num_classes, rng=1)],
            name="mlp",
        )
        history = SGDTrainer(epochs=6, batch_size=32).fit(model, flat_train, tiny_dataset.y_train, rng=0)
        assert history.final_train_accuracy > 0.5

    def test_reproducible_training(self, tiny_dataset):
        results = []
        for _ in range(2):
            model = build_tiny_model(tiny_dataset.num_classes, tiny_dataset.image_size, rng=5)
            SGDTrainer(epochs=2, batch_size=32).fit(model, tiny_dataset.x_train, tiny_dataset.y_train, rng=0)
            results.append(model.forward(tiny_dataset.x_test[:4]))
        assert np.allclose(results[0], results[1])

    def test_invalid_trainer_settings(self):
        with pytest.raises(ValueError):
            SGDTrainer(learning_rate=0.0)
        with pytest.raises(ValueError):
            SGDTrainer(momentum=1.0)
        with pytest.raises(ValueError):
            SGDTrainer(epochs=0)

    def test_mismatched_training_data_rejected(self, tiny_dataset):
        model = build_tiny_model(tiny_dataset.num_classes, tiny_dataset.image_size)
        with pytest.raises(ValueError):
            SGDTrainer(epochs=1).fit(model, tiny_dataset.x_train, tiny_dataset.y_train[:5])


class TestDataset:
    def test_shapes_and_labels(self, tiny_dataset):
        assert tiny_dataset.x_train.shape[1:] == tiny_dataset.input_shape
        assert tiny_dataset.y_train.max() < tiny_dataset.num_classes
        assert tiny_dataset.x_train.shape[0] == 4 * 30
        assert tiny_dataset.x_test.shape[0] == 4 * 12

    def test_generation_is_deterministic(self):
        first = SyntheticImageDataset.generate(num_classes=3, image_size=8, train_per_class=5, test_per_class=2, seed=9)
        second = SyntheticImageDataset.generate(num_classes=3, image_size=8, train_per_class=5, test_per_class=2, seed=9)
        assert np.array_equal(first.x_train, second.x_train)
        assert np.array_equal(first.y_test, second.y_test)

    def test_different_seeds_differ(self):
        first = SyntheticImageDataset.generate(num_classes=3, image_size=8, train_per_class=5, test_per_class=2, seed=1)
        second = SyntheticImageDataset.generate(num_classes=3, image_size=8, train_per_class=5, test_per_class=2, seed=2)
        assert not np.array_equal(first.x_train, second.x_train)

    def test_calibration_split(self, tiny_dataset):
        calibration = tiny_dataset.calibration_split(10, seed=0)
        assert calibration.shape == (10,) + tiny_dataset.input_shape

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SyntheticImageDataset.generate(num_classes=1)
        with pytest.raises(ValueError):
            SyntheticImageDataset.generate(image_size=4)


class TestZoo:
    def test_table1_and_fig1b_architectures_buildable(self):
        for name in set(TABLE1_NETWORKS) | set(FIG1B_NETWORKS):
            model = build_model(name, num_classes=4, image_size=16, rng=0)
            logits = model.forward(np.zeros((2, 3, 16, 16)))
            assert logits.shape == (2, 4)

    def test_family_depth_ordering(self):
        sizes = {
            name: build_model(name, num_classes=4, image_size=16).parameter_count()
            for name in ("resnet50", "resnet101", "resnet152")
        }
        assert sizes["resnet50"] < sizes["resnet101"] < sizes["resnet152"]

    def test_wide_resnet_is_wider(self):
        assert (
            build_model("wide_resnet50", num_classes=4).parameter_count()
            > build_model("resnet50", num_classes=4).parameter_count()
        )

    def test_squeezenet_is_smallest_table1_network(self):
        sizes = {
            name: build_model(name, num_classes=4, image_size=16).parameter_count()
            for name in TABLE1_NETWORKS
        }
        assert min(sizes, key=sizes.get) == "squeezenet"

    def test_unknown_architecture(self):
        with pytest.raises(KeyError):
            build_model("mobilenet")

    def test_display_names(self):
        assert display_name("squeezenet") == "SqueezeNet 1.1"
        assert display_name("unknown_net") == "unknown_net"
        assert len(available_architectures()) == 13

    def test_pretrained_caching(self, tmp_path):
        dataset = SyntheticImageDataset.generate(
            num_classes=3, image_size=8, train_per_class=8, test_per_class=4, seed=3
        )
        trainer = SGDTrainer(epochs=1, batch_size=16)
        first = get_pretrained("squeezenet", dataset, trainer=trainer, cache_dir=tmp_path, seed=0)
        assert first.from_cache is False
        second = get_pretrained("squeezenet", dataset, trainer=trainer, cache_dir=tmp_path, seed=0)
        assert second.from_cache is True
        x = dataset.x_test[:4]
        assert np.allclose(first.model.forward(x), second.model.forward(x))
