"""Tests of the query service stack (repro.service) and its enablers.

Covers the persistent :class:`~repro.parallel.executor.WorkerPool` (shared
sessions, failure recovery, idempotent shutdown), re-entrant
``run_pipeline`` over one pool (byte-identity vs sequential runs), the
artifact-cache LRU size cap with in-flight pinning, the metrics-history
ingest, the wire protocol and admission policy, and the server itself:
cold / warm / coalesced queries byte-identical to the offline runner with
coalesced identical queries executing each task body exactly once.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

import repro.observability as observability
from repro.experiments.reporting import ExperimentResult, _jsonify
from repro.experiments.settings import ExperimentSettings
from repro.observability.history import (
    HISTORY_SCHEMA_VERSION,
    append_history,
    history_row,
    read_history,
)
from repro.parallel import ParallelExecutor, WorkerPool
from repro.pipeline import ArtifactCache, run_pipeline
from repro.pipeline.cache import compute_cache_keys
from repro.pipeline.registry import build_experiment_graph
from repro.pipeline.task import PICKLE_FORMAT, PRODUCT, Task
from repro.service import (
    AdmissionPolicy,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceThread,
    coalesce_key,
    estimate_query_seconds,
)
from repro.service.protocol import (
    BAD_REQUEST,
    OVERLOADED,
    ProtocolError,
    decode,
    encode,
    parse_query,
)
from repro.utils.io import atomic_write_text


def canonical(result: ExperimentResult) -> str:
    """Exactly what save_json / the cache / the service serialize."""
    return json.dumps(result.to_dict(), indent=2, default=_jsonify)


@pytest.fixture(scope="module")
def hw_settings() -> ExperimentSettings:
    """Hardware-side experiments only: no dataset, no model training."""
    return ExperimentSettings.fast(
        error_samples=60,
        energy_transitions=50,
        max_alpha=4,
        max_beta=4,
        test_subset=40,
        fig2_max_compression=3,
    )


@pytest.fixture(autouse=True)
def _restore_observability():
    """The service enables process-global observability; undo after each test."""
    was_enabled = observability.is_enabled()
    yield
    if not was_enabled:
        observability.disable()
    observability.reset()


# ---------------------------------------------------------------- WorkerPool
def _mul(item, payload):
    return item * payload


def _boom(item, payload):
    raise ValueError(f"boom on {item}")


class TestWorkerPool:
    def test_sessions_share_one_pool_with_fresh_payloads(self):
        with WorkerPool(workers=2) as pool:
            with pool.session(_mul, 10) as session:
                assert session.parallel
                tickets = [session.submit(i) for i in range(5)]
                got = dict(session.wait_any() for _ in tickets)
            assert got == {t: i * 10 for i, t in enumerate(tickets)}
            # Second session, different payload, same worker processes.
            with pool.session(_mul, 100) as session:
                ticket = session.submit(3)
                assert session.wait_any() == (ticket, 300)

    def test_failing_task_leaves_pool_usable(self):
        """Satellite bugfix: a mid-flight failure must not poison the pool."""
        with WorkerPool(workers=2) as pool:
            with pytest.raises(ValueError, match="boom"):
                with pool.session(_boom, None) as session:
                    session.submit(1)
                    session.wait_any()
            # The shared pool survives the failed session untouched.
            with pool.session(_mul, 7) as session:
                assert session.parallel
                ticket = session.submit(6)
                assert session.wait_any() == (ticket, 42)

    def test_session_close_is_idempotent(self):
        pool = WorkerPool(workers=2)
        session = pool.session(_mul, 2)
        ticket = session.submit(4)
        assert session.wait_any() == (ticket, 8)
        session.close()
        session.close()  # second close is a no-op, not a double shutdown
        pool.close()
        pool.close()  # pool close idempotent too
        with pytest.raises(RuntimeError, match="closed"):
            pool.session(_mul, 1)

    def test_owned_session_close_is_idempotent(self):
        executor = ParallelExecutor(workers=2)
        session = executor.session(_mul, 3)
        ticket = session.submit(2)
        assert session.wait_any() == (ticket, 6)
        session.close()
        session.close()

    def test_serial_pool_runs_inline(self):
        with WorkerPool(workers=0) as pool:
            with pool.session(_mul, 5) as session:
                assert not session.parallel
                ticket = session.submit(4)
                assert session.wait_any() == (ticket, 20)

    def test_unpicklable_session_falls_back_serial(self):
        with WorkerPool(workers=2) as pool:
            with pytest.warns(RuntimeWarning, match="not picklable"):
                session = pool.session(lambda item, payload: item, None)
            with session:
                assert not session.parallel
                ticket = session.submit(9)
                assert session.wait_any() == (ticket, 9)


# --------------------------------------------------- re-entrant run_pipeline
class TestReentrantScheduling:
    def test_overlapping_runs_on_one_pool_match_sequential(self, hw_settings):
        """Two concurrent run_pipeline calls sharing one pool: bytes equal."""
        sequential = {
            "fig2": canonical(run_pipeline(["fig2"], hw_settings, cache=False).results["fig2"]),
            "fig5": canonical(run_pipeline(["fig5"], hw_settings, cache=False).results["fig5"]),
        }
        concurrent: dict[str, str] = {}
        errors: list[BaseException] = []
        with WorkerPool(workers=2) as pool:
            def run(name: str) -> None:
                try:
                    run_result = run_pipeline([name], hw_settings, cache=False, pool=pool)
                    concurrent[name] = canonical(run_result.results[name])
                except BaseException as error:  # noqa: BLE001 - surfaced below
                    errors.append(error)

            threads = [threading.Thread(target=run, args=(name,)) for name in sequential]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(600)
        assert not errors, errors
        assert concurrent == sequential

    def test_multi_experiment_run_on_pool_matches_per_invocation(self, hw_settings):
        """One pool dispatching overlapped heavies == default execution."""
        baseline = run_pipeline(["fig2", "fig5"], hw_settings, cache=False)
        with WorkerPool(workers=2) as pool:
            pooled = run_pipeline(["fig2", "fig5"], hw_settings, cache=False, pool=pool)
            # The pool stays usable for a second full invocation.
            again = run_pipeline(["fig2", "fig5"], hw_settings, cache=False, pool=pool)
        for name in ("fig2", "fig5"):
            assert canonical(pooled.results[name]) == canonical(baseline.results[name])
            assert canonical(again.results[name]) == canonical(baseline.results[name])


# ------------------------------------------------------------- cache LRU cap
def _product_task(name: str) -> Task:
    return Task(
        name=name,
        fn=lambda ctx: None,
        kind=PRODUCT,
        heavy=False,
        serializer=PICKLE_FORMAT,
    )


def _set_last_hit(cache: ArtifactCache, task: Task, key: str, when: float) -> None:
    meta = cache.read_meta(task.name, key)
    assert meta is not None
    meta["last_hit_at"] = when
    atomic_write_text(cache.meta_path(task, key), json.dumps(meta))


class TestCacheSizeCap:
    def _store_three(self, tmp_path):
        cache = ArtifactCache(tmp_path / "pipeline")
        tasks = [_product_task(f"prod:{i}") for i in range(3)]
        keys = [f"k{i}" for i in range(3)]
        for i, (task, key) in enumerate(zip(tasks, keys)):
            cache.store(task, key, b"x" * 1000)
            _set_last_hit(cache, task, key, 1000.0 + i)  # prod:0 is coldest
        return cache, tasks, keys

    def test_evicts_least_recently_hit_first(self, tmp_path):
        cache, tasks, keys = self._store_three(tmp_path)
        sizes = [record["size_bytes"] for record in cache.entries()]
        assert len(sizes) == 3
        cache.max_bytes = sum(sizes) - 1  # one entry must go
        evicted = cache.enforce_size_cap()
        assert evicted == [("prod_0", "k0")]
        assert not cache.contains(tasks[0], keys[0])
        assert cache.contains(tasks[1], keys[1]) and cache.contains(tasks[2], keys[2])

    def test_pinned_entries_survive_eviction(self, tmp_path):
        cache, tasks, keys = self._store_three(tmp_path)
        cache.max_bytes = 1  # nothing fits: evict all but pinned
        with cache.pinned([(tasks[0].name, keys[0])]):
            evicted = cache.enforce_size_cap()
            assert ("prod_0", "k0") not in evicted
            assert cache.contains(tasks[0], keys[0])
        # Unpinned now; the next pass may evict it.
        assert cache.enforce_size_cap() == [("prod_0", "k0")]

    def test_pins_are_refcounted(self, tmp_path):
        cache, tasks, keys = self._store_three(tmp_path)
        cache.pin(tasks[0].name, keys[0])
        cache.pin(tasks[0].name, keys[0])
        cache.unpin(tasks[0].name, keys[0])
        assert cache.is_pinned("prod_0", keys[0])  # one pin still held
        cache.unpin(tasks[0].name, keys[0])
        assert not cache.is_pinned("prod_0", keys[0])

    def test_no_cap_means_no_eviction(self, tmp_path):
        cache, _, _ = self._store_three(tmp_path)
        assert cache.max_bytes is None
        assert cache.enforce_size_cap() == []
        assert len(cache.entries()) == 3

    def test_scheduler_enforces_cap_after_run(self, tmp_path, hw_settings):
        settings = hw_settings.with_overrides(cache_max_bytes=1)
        run = run_pipeline(["fig2"], settings, cache_dir=tmp_path)
        assert run.results["fig2"].rows
        cache = ArtifactCache.resolve(tmp_path)
        # Every artifact exceeds a 1-byte budget; with no pins left after
        # the run, the cap empties the cache.
        assert cache.entries() == []


# ------------------------------------------------------------ metrics history
def _fake_sidecar() -> dict:
    return {
        "schema": 1,
        "requested": ["fig2"],
        "cache_root": None,
        "tasks": {
            "fig2": {"action": "executed", "duration_s": 2.0, "where": "inline"},
            "mac": {"action": "hit", "duration_s": 0.1, "where": "cache"},
            "fig5": {"action": "pruned", "duration_s": 0.0, "where": "-"},
        },
        "observability": {
            "metrics": {"counters": {"sim.events.popped": 500, "sim.lanes": 64}},
            "spans": [
                {"name": "pipeline:run", "duration_s": 2.5, "parent_id": None},
            ],
        },
    }


class TestMetricsHistory:
    def test_history_row_derives_rates_and_ratio(self):
        row = history_row(_fake_sidecar(), commit="abc123", timestamp=42.0)
        assert row["schema"] == HISTORY_SCHEMA_VERSION
        assert row["commit"] == "abc123" and row["timestamp"] == 42.0
        assert row["tasks_executed"] == 1 and row["tasks_hit"] == 1
        assert row["cache_hit_ratio"] == pytest.approx(0.5)
        assert row["events_per_s"] == pytest.approx(500 / 2.5)
        assert row["lanes_per_s"] == pytest.approx(64 / 2.5)
        assert row["task_durations_s"] == {"fig2": 2.0, "mac": 0.1}  # pruned excluded

    def test_append_and_read_roundtrip(self, tmp_path):
        path = tmp_path / "history" / "runs.jsonl"
        append_history(path, _fake_sidecar(), commit="one", timestamp=1.0)
        append_history(path, _fake_sidecar(), commit="two", timestamp=2.0)
        rows = read_history(path)
        assert [row["commit"] for row in rows] == ["one", "two"]
        assert all(row["requested"] == ["fig2"] for row in rows)

    def test_read_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        append_history(path, _fake_sidecar(), commit="ok", timestamp=1.0)
        with path.open("a") as handle:
            handle.write("not json\n")
        assert [row["commit"] for row in read_history(path)] == ["ok"]

    def test_runner_append_history_flag(self, tmp_path, hw_settings, monkeypatch, capsys):
        from repro.experiments.runner import main as runner_main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_COMMIT", "deadbeef")
        history = tmp_path / "runs.jsonl"
        assert (
            runner_main(
                [
                    "--experiments",
                    "fig2",
                    "--append-history",
                    str(history),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "history row appended" in out
        rows = read_history(history)
        assert len(rows) == 1
        assert rows[0]["commit"] == "deadbeef"
        assert rows[0]["requested"] == ["fig2"]
        assert rows[0]["tasks_executed"] >= 1


# ------------------------------------------------------------------ protocol
class TestProtocol:
    def test_encode_decode_roundtrip(self):
        message = {"op": "query", "experiments": ["fig2"], "overrides": {"seed": 3}}
        assert decode(encode(message)) == message

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode(b"not json\n")
        with pytest.raises(ProtocolError):
            decode(b"[1, 2]\n")
        with pytest.raises(ProtocolError):
            decode(b"\n")

    def test_parse_query_validates_shape(self):
        with pytest.raises(ProtocolError):
            parse_query({"op": "query"})
        with pytest.raises(ProtocolError):
            parse_query({"op": "query", "experiments": []})
        with pytest.raises(ProtocolError):
            parse_query({"op": "query", "experiments": ["fig2"], "overrides": [1]})
        names, overrides = parse_query(
            {"op": "query", "experiments": ["fig2", "fig5"], "overrides": {"seed": 1}}
        )
        assert names == ["fig2", "fig5"] and overrides == {"seed": 1}

    def test_coalesce_key_is_order_invariant_and_key_sensitive(self, hw_settings):
        graph = build_experiment_graph(hw_settings)
        keys = compute_cache_keys(graph, hw_settings)
        changed = compute_cache_keys(
            graph, hw_settings.with_overrides(fig2_max_compression=2)
        )
        assert coalesce_key(["fig2", "fig5"], keys) == coalesce_key(["fig5", "fig2"], keys)
        assert coalesce_key(["fig2"], keys) != coalesce_key(["fig5"], keys)
        assert coalesce_key(["fig2"], keys) != coalesce_key(["fig2"], changed)


# ----------------------------------------------------------------- admission
class TestAdmission:
    def test_queue_bound(self):
        policy = AdmissionPolicy(max_pending=2)
        ok = policy.admit(
            tasks_to_execute=1, estimated_seconds=0.0, pending=1, inflight_tasks=0
        )
        assert ok.admitted
        full = policy.admit(
            tasks_to_execute=1, estimated_seconds=0.0, pending=2, inflight_tasks=0
        )
        assert not full.admitted and "queue full" in full.reason

    def test_per_query_task_budget(self):
        policy = AdmissionPolicy(max_tasks_per_query=3)
        no = policy.admit(
            tasks_to_execute=4, estimated_seconds=0.0, pending=0, inflight_tasks=0
        )
        assert not no.admitted and "max_tasks_per_query" in no.reason

    def test_global_inflight_cap(self):
        policy = AdmissionPolicy(max_inflight_tasks=5)
        no = policy.admit(
            tasks_to_execute=3, estimated_seconds=0.0, pending=0, inflight_tasks=4
        )
        assert not no.admitted and "max_inflight_tasks" in no.reason

    def test_estimated_cost_ceiling(self):
        policy = AdmissionPolicy(max_estimated_seconds=10.0)
        no = policy.admit(
            tasks_to_execute=1, estimated_seconds=11.0, pending=0, inflight_tasks=0
        )
        assert not no.admitted and "max_estimated_seconds" in no.reason

    def test_estimate_uses_sidecar_timings(self, tmp_path):
        cache = ArtifactCache(tmp_path / "pipeline")
        task = _product_task("prod:est")
        cache.store(task, "key1", b"blob", timing={"duration_s": 2.5})
        estimate = estimate_query_seconds(
            cache, ["prod:est", "never:seen"], {}, default_task_seconds=1.0
        )
        assert estimate == pytest.approx(3.5)  # 2.5 from sidecar + 1.0 default
        assert estimate_query_seconds(None, ["a", "b"], {}, default_task_seconds=2.0) == 4.0


# ------------------------------------------------------------------- service
def _wait_for(condition, timeout=60.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {message}")


class TestService:
    def _config(self, tmp_path, hw_settings, **kwargs):
        return ServiceConfig(
            settings=hw_settings,
            cache_dir=tmp_path / "service-cache",
            **kwargs,
        )

    def test_cold_and_warm_queries_byte_identical_to_offline(
        self, tmp_path, hw_settings
    ):
        expected = canonical(
            run_pipeline(["fig2"], hw_settings, cache=False).results["fig2"]
        )
        service = ServiceThread(self._config(tmp_path, hw_settings))
        host, port = service.start()
        try:
            with ServiceClient(host, port) as client:
                assert client.ping()["event"] == "pong"
                before = client.stats()["counters"]

                cold_events: list[dict] = []
                cold = client.query(["fig2"], on_event=cold_events.append)
                accepted = cold_events[0]
                assert accepted["event"] == "accepted"
                assert not accepted["coalesced"] and not accepted["warm"]
                assert cold["artifacts"]["fig2"] == expected
                task_events = [e for e in cold_events if e["event"] == "task"]
                assert {e["name"] for e in task_events} >= {"fig2"}
                assert all(e["action"] == "executed" for e in task_events)

                warm_events: list[dict] = []
                warm = client.query(["fig2"], on_event=warm_events.append)
                assert warm_events[0]["warm"] is True
                assert warm["artifacts"]["fig2"] == expected
                assert warm["warm"] is True

                after = client.stats()["counters"]
                executed = after.get("pipeline.tasks.executed", 0) - before.get(
                    "pipeline.tasks.executed", 0
                )
                assert executed == accepted["tasks_to_execute"]  # warm added none
                assert after.get("service.queries.warm", 0) == 1
        finally:
            service.stop()

    def test_concurrent_identical_queries_coalesce_exactly_once(
        self, tmp_path, hw_settings
    ):
        gate = threading.Event()
        running = threading.Event()

        def hook(plan) -> None:
            running.set()
            assert gate.wait(120), "test gate never released"

        service = ServiceThread(
            self._config(tmp_path, hw_settings, execution_hook=hook)
        )
        host, port = service.start()
        results: dict[int, dict] = {}
        events: dict[int, list] = {1: [], 2: []}
        errors: list[BaseException] = []

        def do_query(slot: int) -> None:
            try:
                with ServiceClient(host, port) as client:
                    results[slot] = client.query(
                        ["fig2"], on_event=events[slot].append
                    )
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        try:
            with ServiceClient(host, port) as control:
                before = control.stats()["counters"]
                first = threading.Thread(target=do_query, args=(1,))
                first.start()
                assert running.wait(120), "first query never started executing"
                second = threading.Thread(target=do_query, args=(2,))
                second.start()
                _wait_for(
                    lambda: any(e.get("event") == "accepted" for e in events[2]),
                    message="second query acceptance",
                )
                accepted_2 = next(e for e in events[2] if e["event"] == "accepted")
                assert accepted_2["coalesced"] is True
                gate.set()
                first.join(300)
                second.join(300)
                assert not errors, errors
                after = control.stats()["counters"]
        finally:
            gate.set()
            service.stop()

        accepted_1 = next(e for e in events[1] if e["event"] == "accepted")
        assert accepted_1["coalesced"] is False
        # Both subscribers got byte-identical artifacts from ONE execution.
        assert results[1]["artifacts"] == results[2]["artifacts"]
        executed = after.get("pipeline.tasks.executed", 0) - before.get(
            "pipeline.tasks.executed", 0
        )
        assert executed == accepted_1["tasks_to_execute"]
        assert (
            after.get("service.queries.coalesced", 0)
            - before.get("service.queries.coalesced", 0)
        ) == 1

    def test_admission_rejects_over_budget_query(self, tmp_path, hw_settings):
        service = ServiceThread(
            self._config(
                tmp_path,
                hw_settings,
                admission=AdmissionPolicy(max_tasks_per_query=1),
            )
        )
        host, port = service.start()
        try:
            with ServiceClient(host, port) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.query(["fig2"])
                assert excinfo.value.code == OVERLOADED
        finally:
            service.stop()

    def test_bounded_queue_rejects_when_full(self, tmp_path, hw_settings):
        gate = threading.Event()
        running = threading.Event()

        def hook(plan) -> None:
            running.set()
            assert gate.wait(120)

        service = ServiceThread(
            self._config(
                tmp_path,
                hw_settings,
                execution_hook=hook,
                admission=AdmissionPolicy(max_pending=1),
            )
        )
        host, port = service.start()
        holder: dict[str, dict] = {}
        second_events: list[dict] = []
        errors: list[BaseException] = []

        def run_query(slot: str, overrides: "dict | None", on_event=None) -> None:
            try:
                with ServiceClient(host, port) as client:
                    holder[slot] = client.query(["fig2"], overrides, on_event=on_event)
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        try:
            # First query executes (held open by the gate): pending == 0.
            first = threading.Thread(target=run_query, args=("first", None))
            first.start()
            assert running.wait(120)
            # Second query has a *different* coalesce key (fig2 declares
            # fig2_max_compression): admitted and queued -> pending == 1.
            second = threading.Thread(
                target=run_query,
                args=("second", {"fig2_max_compression": 2}, second_events.append),
            )
            second.start()
            _wait_for(
                lambda: any(e.get("event") == "accepted" for e in second_events),
                message="second query acceptance",
            )
            # Third distinct cold query: the bounded queue is full.
            with ServiceClient(host, port) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.query(["fig2"], {"fig2_max_compression": 1})
                assert excinfo.value.code == OVERLOADED
                assert "queue full" in str(excinfo.value)
            gate.set()
            first.join(300)
            second.join(300)
            assert not errors, errors
            assert "fig2" in holder["first"]["artifacts"]
            assert "fig2" in holder["second"]["artifacts"]
        finally:
            gate.set()
            service.stop()

    def test_bad_requests_rejected_not_fatal(self, tmp_path, hw_settings):
        service = ServiceThread(self._config(tmp_path, hw_settings))
        host, port = service.start()
        try:
            with ServiceClient(host, port) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.query(["fig99"])
                assert excinfo.value.code == BAD_REQUEST
                with pytest.raises(ServiceError) as excinfo:
                    client.query(["fig2"], {"not_a_field": 1})
                assert excinfo.value.code == BAD_REQUEST
                # The connection is still usable afterwards.
                assert client.ping()["event"] == "pong"
        finally:
            service.stop()

    def test_failed_execution_reports_error_and_service_survives(
        self, tmp_path, hw_settings
    ):
        def hook(plan) -> None:
            if plan.settings.seed == 4242:
                raise RuntimeError("injected failure")

        service = ServiceThread(
            self._config(tmp_path, hw_settings, execution_hook=hook)
        )
        host, port = service.start()
        try:
            with ServiceClient(host, port) as client:
                with pytest.raises(ServiceError, match="injected failure"):
                    client.query(["fig2"], {"seed": 4242})
                # The same connection and service keep working; the failed
                # query holds no inflight slots.
                stats = client.stats()
                assert stats["inflight_queries"] == 0
                assert stats["inflight_tasks"] == 0
                result = client.query(["fig2"])
                assert "fig2" in result["artifacts"]
        finally:
            service.stop()

    def test_shutdown_op_stops_the_service(self, tmp_path, hw_settings):
        service = ServiceThread(self._config(tmp_path, hw_settings))
        host, port = service.start()
        with ServiceClient(host, port) as client:
            assert client.shutdown()["event"] == "bye"
        service.stop()  # joins the already-stopping thread
        with pytest.raises((ConnectionError, OSError)):
            ServiceClient(host, port, timeout=2).ping()
