"""Shared fixtures for the test suite.

Heavy objects (circuits, library sets, datasets, trained models) are built
once per session and reused; tests that need mutation make their own copies.
Sizes are deliberately small — correctness of behaviour, not paper-scale
numbers, is what the unit tests check.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aging.cell_library import AgingAwareLibrarySet, fresh_library
from repro.circuits.mac import build_mac, build_multiplier
from repro.nn.datasets import SyntheticImageDataset
from repro.nn.layers import Conv2D, Dense, Flatten, GlobalAvgPool2D, MaxPool2D, ReLU
from repro.nn.model import Model
from repro.nn.training import SGDTrainer


@pytest.fixture(scope="session", autouse=True)
def _isolated_cache_dir(tmp_path_factory):
    """Point REPRO_CACHE_DIR at a per-session temp directory.

    The pipeline artifact cache (and the zoo weight cache) default to
    ~/.cache; tests must neither read stale artifacts from nor leak
    artifacts into the developer's real cache.
    """
    import os

    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:  # pragma: no cover - depends on the developer's environment
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="session")
def library_set() -> AgingAwareLibrarySet:
    return AgingAwareLibrarySet.generate((0.0, 10.0, 20.0, 30.0, 40.0, 50.0))


@pytest.fixture(scope="session")
def fresh_cells():
    return fresh_library()


@pytest.fixture(scope="session")
def small_multiplier():
    """4x4 array multiplier: small enough for exhaustive functional checks."""
    return build_multiplier(4, "array")


@pytest.fixture(scope="session")
def small_wallace_multiplier():
    return build_multiplier(4, "wallace")


@pytest.fixture(scope="session")
def small_mac():
    """A reduced MAC (4-bit multiplier, 10-bit accumulator) for fast tests."""
    return build_mac(multiplier_width=4, accumulator_width=10)


@pytest.fixture(scope="session")
def paper_mac():
    """The paper's 8-bit/22-bit MAC (used by the slower integration tests)."""
    return build_mac()


@pytest.fixture(scope="session")
def tiny_dataset() -> SyntheticImageDataset:
    # max_shift is kept small: on 8x8 images the default +/-2 circular shift
    # makes the task too hard for the deliberately tiny test models.
    return SyntheticImageDataset.generate(
        num_classes=4,
        image_size=8,
        train_per_class=30,
        test_per_class=12,
        max_shift=1,
        noise_std=0.25,
        seed=7,
    )


def build_tiny_model(num_classes: int = 4, image_size: int = 8, rng: int = 3) -> Model:
    """A small conv net exercising every primitive layer type."""
    return Model(
        [
            Conv2D(3, 8, kernel_size=3, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Conv2D(8, 12, kernel_size=3, rng=rng + 1),
            ReLU(),
            GlobalAvgPool2D(),
            Dense(12, num_classes, rng=rng + 2),
        ],
        name="tiny",
        num_classes=num_classes,
    )


def build_tiny_flat_model(num_classes: int = 4, image_size: int = 8, rng: int = 5) -> Model:
    """A small VGG-style net with a Flatten/Dense head."""
    spatial = image_size // 2
    return Model(
        [
            Conv2D(3, 4, kernel_size=3, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(4 * spatial * spatial, num_classes, rng=rng + 1),
        ],
        name="tiny_flat",
        num_classes=num_classes,
    )


@pytest.fixture(scope="session")
def tiny_model(tiny_dataset) -> Model:
    """A tiny model trained for a few epochs on the tiny dataset."""
    model = build_tiny_model(num_classes=tiny_dataset.num_classes, image_size=tiny_dataset.image_size)
    trainer = SGDTrainer(epochs=6, batch_size=32, learning_rate=0.1)
    trainer.fit(model, tiny_dataset.x_train, tiny_dataset.y_train, rng=0)
    return model


@pytest.fixture(scope="session")
def tiny_calibration(tiny_dataset) -> np.ndarray:
    return tiny_dataset.calibration_split(24, seed=1)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
