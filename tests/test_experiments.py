"""Tests of the experiment harness (reporting, settings, and fast end-to-end runs).

The NN-heavy experiments (Table 1, Fig. 1b, ablations) are exercised with a
drastically reduced settings profile so the suite stays fast; their full
versions are covered by the benchmark harness.
"""

import json

import numpy as np
import pytest

from repro.experiments import (
    ExperimentResult,
    ExperimentSettings,
    ExperimentWorkspace,
    run_experiments,
    run_fig1a,
    run_fig2,
    run_fig4a,
    run_fig4b,
    run_fig5,
    run_table2,
)
from repro.experiments.runner import EXPERIMENTS, main


@pytest.fixture(scope="module")
def fast_workspace():
    settings = ExperimentSettings.fast(
        error_samples=60,
        energy_transitions=80,
        max_alpha=4,
        max_beta=4,
        test_subset=60,
    )
    return ExperimentWorkspace.create(settings)


class TestReporting:
    def test_table_rendering_and_columns(self):
        result = ExperimentResult(
            experiment_id="demo",
            title="Demo",
            columns=["x", "y"],
            rows=[[1, 2.0], [3, 4.5]],
        )
        assert "Demo" in result.to_table()
        assert result.column_values("y") == [2.0, 4.5]
        with pytest.raises(KeyError):
            result.column_values("z")

    def test_json_round_trip(self, tmp_path):
        result = ExperimentResult("demo", "Demo", ["a"], [[np.float64(1.5)]], metadata={"k": 2})
        path = result.save_json(tmp_path / "demo.json")
        import json

        data = json.loads(path.read_text())
        assert data["experiment_id"] == "demo"
        assert data["rows"] == [[1.5]]
        assert data["metadata"] == {"k": 2}

    def test_save_json_creates_parent_directories(self, tmp_path):
        result = ExperimentResult("demo", "Demo", ["a"], [[1]])
        path = result.save_json(tmp_path / "out" / "nested" / "demo.json")
        assert path.exists() and path.parent.name == "nested"

    def test_interrupted_serialization_never_truncates(self, tmp_path):
        """A failing write must leave the previous JSON intact, not a stub."""

        class Unserializable:
            def __str__(self):
                raise RuntimeError("boom mid-serialization")

        path = tmp_path / "demo.json"
        ExperimentResult("demo", "Demo", ["a"], [[1]]).save_json(path)
        original = path.read_text()
        bad = ExperimentResult("demo", "Demo", ["a"], [[Unserializable()]])
        with pytest.raises(RuntimeError, match="boom"):
            bad.save_json(path)
        assert path.read_text() == original
        assert list(path.parent.iterdir()) == [path]  # no temp leftovers

    def test_interrupted_replace_cleans_up_temp_file(self, tmp_path, monkeypatch):
        """Dying between temp write and rename leaves no debris behind."""
        import os as os_module

        def failing_replace(src, dst):
            raise OSError("interrupted")

        monkeypatch.setattr(os_module, "replace", failing_replace)
        path = tmp_path / "demo.json"
        with pytest.raises(OSError, match="interrupted"):
            ExperimentResult("demo", "Demo", ["a"], [[1]]).save_json(path)
        assert list(tmp_path.iterdir()) == []


class TestSettings:
    def test_profiles(self):
        fast = ExperimentSettings.fast()
        full = ExperimentSettings.full()
        assert len(full.table1_networks) > len(fast.table1_networks)
        assert full.error_samples > fast.error_samples
        assert fast.aged_levels_mv == (10.0, 20.0, 30.0, 40.0, 50.0)

    def test_overrides(self):
        settings = ExperimentSettings.fast(seed=5).with_overrides(error_samples=10)
        assert settings.seed == 5 and settings.error_samples == 10


class TestHardwareSideExperiments:
    def test_fig1a_shape(self, fast_workspace):
        result = run_fig1a(workspace=fast_workspace)
        assert result.columns[0] == "delta_vth_mv"
        levels = result.column_values("delta_vth_mv")
        assert levels == list(fast_workspace.settings.aging_levels_mv)
        med = result.column_values("mean_error_distance")
        assert med[0] == 0.0
        assert med[-1] >= med[0]

    def test_fig2_delay_gain(self, fast_workspace):
        result = run_fig2(workspace=fast_workspace)
        assert result.metadata["max_delay_gain_percent"] > 10.0
        for row in result.rows:
            assert row[2] <= 1.0 + 1e-9 and row[3] <= 1.0 + 1e-9

    def test_table2_compressions_meet_timing(self, fast_workspace):
        result = run_table2(workspace=fast_workspace)
        assert len(result.rows) == 5
        ours = result.column_values("normalized_delay_ours")
        baseline = result.column_values("normalized_delay_baseline")
        assert all(value <= 1.0 + 1e-9 for value in ours)
        assert all(value >= 1.0 for value in baseline)
        surrogates = [np.hypot(row[1], row[2]) for row in result.rows]
        assert surrogates == sorted(surrogates) or max(surrogates) == surrogates[-1]

    def test_fig4a_guardband(self, fast_workspace):
        result = run_fig4a(workspace=fast_workspace)
        assert result.metadata["guardband_percent"] == pytest.approx(23.0, abs=1.5)
        assert result.column_values("ours_normalized_delay")[-1] <= 1.0 + 1e-9

    def test_fig5_energy_reduction(self, fast_workspace):
        result = run_fig5(workspace=fast_workspace)
        normalized = result.column_values("normalized_energy")
        assert normalized[0] == pytest.approx(1.0, abs=0.15)
        assert normalized[-1] < 0.95
        assert result.metadata["average_reduction_percent_aged"] > 0.0

    def test_fig4b_aggregates_from_table1(self, fast_workspace):
        table1 = ExperimentResult(
            experiment_id="table1",
            title="stub",
            columns=["network", "delta_vth_mv", "compression", "accuracy_loss_percent",
                     "selected_method", "fp32_accuracy", "quantized_accuracy"],
            rows=[
                ["A", 10.0, "(1,1)/MSB", 0.2, "M4", 0.9, 0.898],
                ["B", 10.0, "(1,1)/MSB", 0.6, "M3", 0.9, 0.894],
                ["A", 50.0, "(3,4)/LSB", 2.0, "M4", 0.9, 0.88],
                ["B", 50.0, "(3,4)/LSB", 4.0, "M4", 0.9, 0.86],
            ],
        )
        result = run_fig4b(workspace=fast_workspace, table1=table1)
        assert result.column_values("delta_vth_mv") == [10.0, 50.0]
        means = result.column_values("mean")
        assert means[0] == pytest.approx(0.4)
        assert means[1] == pytest.approx(3.0)


class TestWorkspaceProductCaching:
    """Each lazy product builds exactly once; seeds never share artifacts."""

    def test_each_product_builds_exactly_once_per_settings_object(self, monkeypatch):
        import repro.experiments.workspace as workspace_module

        calls = {"dataset": 0, "mac": 0, "libraries": 0, "model": 0}
        real_generate = workspace_module.SyntheticImageDataset.generate

        def counting_generate(*args, **kwargs):
            calls["dataset"] += 1
            return real_generate(*args, **kwargs)

        real_build_mac = workspace_module.build_mac
        real_libraries = workspace_module.AgingAwareLibrarySet.generate

        def counting_libraries(*args, **kwargs):
            calls["libraries"] += 1
            return real_libraries(*args, **kwargs)

        monkeypatch.setattr(
            workspace_module.SyntheticImageDataset, "generate", counting_generate
        )
        monkeypatch.setattr(
            workspace_module, "build_mac",
            lambda *a, **k: (calls.__setitem__("mac", calls["mac"] + 1), real_build_mac(*a, **k))[1],
        )
        monkeypatch.setattr(
            workspace_module.AgingAwareLibrarySet, "generate", counting_libraries
        )
        monkeypatch.setattr(
            workspace_module, "get_pretrained",
            lambda name, dataset, **k: (calls.__setitem__("model", calls["model"] + 1), object())[1],
        )

        settings = ExperimentSettings.fast(
            num_classes=3, image_size=8, train_per_class=4, test_per_class=2
        )
        workspace = ExperimentWorkspace.create(settings)
        _ = (workspace.dataset, workspace.dataset, workspace.calibration, workspace.test_inputs)
        assert calls["dataset"] == 1
        _ = (workspace.mac, workspace.mac, workspace.multiplier)
        assert calls["mac"] == 1
        _ = (workspace.library_set, workspace.pipeline, workspace.pipeline)
        assert calls["libraries"] == 1
        first = workspace.model("squeezenet")
        assert workspace.model("squeezenet") is first
        assert calls["model"] == 1

    def test_adopted_products_short_circuit_the_builders(self, monkeypatch):
        import repro.experiments.workspace as workspace_module

        def exploding_generate(*args, **kwargs):
            raise AssertionError("adopted dataset must not be rebuilt")

        monkeypatch.setattr(
            workspace_module.SyntheticImageDataset, "generate", exploding_generate
        )
        workspace = ExperimentWorkspace.create(ExperimentSettings.fast())
        sentinel_dataset = object()
        sentinel_model = object()
        workspace.adopt({"dataset": sentinel_dataset, "model:vgg16": sentinel_model, "table1": "ignored"})
        assert workspace.dataset is sentinel_dataset
        assert workspace.model("vgg16") is sentinel_model
        # Adoption is idempotent and never clobbers an existing product.
        workspace.adopt({"dataset": object()})
        assert workspace.dataset is sentinel_dataset

    def test_different_seeds_never_share_artifacts(self, tmp_path):
        settings = ExperimentSettings.fast(
            num_classes=3,
            image_size=8,
            train_per_class=6,
            test_per_class=3,
            training_epochs=1,
            training_batch_size=4,
            cache_dir=tmp_path,
        )
        first = ExperimentWorkspace.create(settings)
        second = ExperimentWorkspace.create(settings.with_overrides(seed=1))
        assert not np.array_equal(first.dataset.x_train, second.dataset.x_train)
        model_a = first.model("resnet20")
        model_b = second.model("resnet20")
        assert model_a is not model_b
        state_a = model_a.model.state_dict()
        state_b = model_b.model.state_dict()
        assert any(
            not np.array_equal(state_a[name], state_b[name]) for name in state_a
        )


class TestRunner:
    def test_registry_covers_all_paper_artifacts(self):
        assert {
            "fig1a", "fig1b", "fig2", "table1", "table2", "fig4a", "fig4b", "fig5",
            "ablation_surrogate", "ablation_precision_scaling",
        } <= set(EXPERIMENTS)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiments(["fig99"])

    def test_runner_saves_json(self, tmp_path):
        settings = ExperimentSettings.fast(max_alpha=3, max_beta=3)
        results = run_experiments(["table2"], settings=settings, output_dir=tmp_path)
        assert (tmp_path / "table2.json").exists()
        assert results[0].experiment_id == "table2"

    def test_runner_returns_one_result_per_requested_name(self, tmp_path):
        settings = ExperimentSettings.fast(max_alpha=3, max_beta=3, cache_dir=tmp_path)
        results = run_experiments(["fig2", "table2", "fig2"], settings=settings)
        assert [r.experiment_id for r in results] == ["fig2", "table2", "fig2"]
        assert results[0] is results[2]  # repeats resolve to the same object

    def test_cli_main(self, tmp_path, capsys):
        exit_code = main(["--experiments", "fig4a", "--profile", "fast", "--output", str(tmp_path)])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "Fig. 4a" in captured.out
        assert (tmp_path / "fig4a.json").exists()

    @pytest.mark.parametrize(
        "argv",
        [
            ["--workers", "-2"],
            ["--workers", "nope"],
            ["--chunk-size", "0"],
            ["--chunk-size", "-4"],
            ["--lanes", "0"],
            ["--lanes", "-64"],
            ["--batch-size", "0"],
            ["--backend", "gpu"],
        ],
    )
    def test_cli_rejects_invalid_parallel_and_backend_args(self, argv, capsys):
        """Bad --workers/--chunk-size/--lanes values fail at parse time.

        Previously a zero/negative value fell through to confusing errors
        deep inside the sweep machinery; argparse must reject it up front.
        """
        with pytest.raises(SystemExit) as excinfo:
            main(["--experiments", "fig2", *argv])
        assert excinfo.value.code == 2
        assert "error" in capsys.readouterr().err

    def test_cli_accepts_backend_and_lanes(self, capsys):
        exit_code = main(
            ["--experiments", "fig2", "--backend", "ndarray", "--lanes", "512",
             "--workers", "0"]
        )
        assert exit_code == 0
        assert "Fig. 2" in capsys.readouterr().out

    def test_cli_scenario_and_years(self, tmp_path, capsys):
        """--years implies the mission axis; the rows sweep mission points."""
        exit_code = main(
            ["--experiments", "fig1a", "--no-cache", "--lanes", "64",
             "--years", "0", "10", "--output", str(tmp_path)]
        )
        assert exit_code == 0
        assert "Fig. 1a" in capsys.readouterr().out
        stored = json.loads((tmp_path / "fig1a.json").read_text())
        assert stored["metadata"]["scenario"] == "mission"
        assert [point["kind"] for point in stored["metadata"]["scenario_points"]] == [
            "mission",
            "mission",
        ]
        levels = [row[0] for row in stored["rows"]]
        assert levels[0] == 0.0
        assert levels[-1] == pytest.approx(50.0)
        assert "equivalent_stress_years" in stored["metadata"]

    def test_cli_rejects_bad_scenario_args(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--experiments", "fig1a", "--scenario", "cosmic"])
        assert excinfo.value.code == 2
        with pytest.raises(SystemExit) as excinfo:
            main(["--experiments", "fig1a", "--years", "-1"])
        assert excinfo.value.code == 2
        assert "error" in capsys.readouterr().err

    def test_fig4b_alone_pulls_table1_through_the_graph(self, tmp_path):
        """Regression: the old runner silently passed table1=None here."""
        settings = ExperimentSettings.fast(
            train_per_class=8,
            test_per_class=4,
            training_epochs=1,
            training_batch_size=8,
            test_subset=8,
            calibration_samples=8,
            table1_networks=("squeezenet",),
            aging_levels_mv=(0.0, 50.0),
            max_alpha=3,
            max_beta=3,
            cache_dir=tmp_path,
        )
        results = run_experiments(["fig4b"], settings=settings, output_dir=tmp_path / "out")
        assert [r.experiment_id for r in results] == ["fig4b"]
        # One box-plot row per aged level, aggregated from the real table1.
        assert results[0].column_values("delta_vth_mv") == [50.0]
        assert (tmp_path / "out" / "fig4b.json").exists()
        # table1 was cached along the way: rerunning it is a pure cache hit.
        from repro.pipeline import run_pipeline

        warm = run_pipeline(["table1"], settings)
        assert warm.executed_experiments == ()

    def test_cli_list_prints_registry_with_dependencies(self, tmp_path, capsys):
        exit_code = main(["--list", "--cache-dir", str(tmp_path)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Experiment registry" in out
        assert "fig4b" in out and "table1" in out
        assert "depends" in out and "miss" in out
        # --list must not have run anything.
        assert "Fig. 2" not in out

    def test_cli_explain_reports_cache_actions(self, tmp_path, capsys):
        argv = ["--experiments", "fig2", "--cache-dir", str(tmp_path), "--explain"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "Pipeline plan" in first and "executed" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "hit" in second

    def test_cli_no_cache_disables_the_artifact_cache(self, tmp_path, capsys):
        argv = [
            "--experiments", "fig2", "--cache-dir", str(tmp_path),
            "--no-cache", "--explain",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache: disabled" in out
        assert not any(tmp_path.iterdir())

    @pytest.mark.parametrize("argv", [["--cache-dir"], ["--experiments", "fig99"]])
    def test_cli_rejects_bad_pipeline_args(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert "error" in capsys.readouterr().err
