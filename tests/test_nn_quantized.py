"""Tests of integer (quantized) model execution and MSB fault injection."""

import numpy as np
import pytest

from repro.nn.evaluate import evaluate_with_fault_injection, quantize_and_evaluate
from repro.nn.faults import MsbBitFlipInjector
from repro.nn.quantized import QuantizationContext, QuantizedModel
from repro.quantization.registry import METHOD_KEYS, get_method


class TestQuantizationContext:
    def test_finalize_requires_calibration(self):
        context = QuantizationContext(get_method("M2"), activation_bits=8, weight_bits=8)
        with pytest.raises(RuntimeError):
            context.finalize()

    def test_invalid_bit_widths(self):
        with pytest.raises(ValueError):
            QuantizationContext(get_method("M2"), activation_bits=0, weight_bits=8)
        with pytest.raises(ValueError):
            QuantizationContext(get_method("M2"), activation_bits=8, weight_bits=8, bias_bits=0)

    def test_unquantized_layer_lookup_fails_cleanly(self, tiny_model, tiny_calibration, tiny_dataset):
        quantized = QuantizedModel.build(
            tiny_model, get_method("M2"), 8, 8, calibration_data=tiny_calibration
        )
        # A layer that never went through calibration is rejected explicitly.
        from repro.nn.layers import Dense

        foreign = Dense(4, 2, rng=0)
        foreign.name = "foreign"
        with pytest.raises(KeyError):
            quantized.context.linear(foreign, np.zeros((1, 4)), foreign.weight.value, foreign.bias.value)


class TestQuantizedModel:
    def test_build_requires_finalized_context(self, tiny_model):
        context = QuantizationContext(get_method("M2"), 8, 8)
        with pytest.raises(ValueError):
            QuantizedModel(tiny_model, context)

    def test_eight_bit_quantization_preserves_accuracy(self, tiny_model, tiny_calibration, tiny_dataset):
        fp32 = tiny_model.accuracy(tiny_dataset.x_test, tiny_dataset.y_test)
        quantized = QuantizedModel.build(
            tiny_model, get_method("M2"), 8, 8, calibration_data=tiny_calibration
        )
        accuracy = quantized.accuracy(tiny_dataset.x_test, tiny_dataset.y_test)
        assert abs(fp32 - accuracy) <= 0.05

    @pytest.mark.parametrize("key", METHOD_KEYS)
    def test_all_methods_execute(self, key, tiny_model, tiny_calibration, tiny_dataset):
        quantized = QuantizedModel.build(
            tiny_model, get_method(key), 6, 6, calibration_data=tiny_calibration
        )
        predictions = quantized.predict(tiny_dataset.x_test[:16])
        assert predictions.shape == (16,)

    def test_aggressive_quantization_degrades_more(self, tiny_model, tiny_calibration, tiny_dataset):
        fp32 = tiny_model.accuracy(tiny_dataset.x_test, tiny_dataset.y_test)
        mild = quantize_and_evaluate(
            tiny_model, get_method("M2"), 8, 8, tiny_calibration,
            tiny_dataset.x_test, tiny_dataset.y_test, fp32_accuracy=fp32,
        )
        harsh = quantize_and_evaluate(
            tiny_model, get_method("M2"), 3, 3, tiny_calibration,
            tiny_dataset.x_test, tiny_dataset.y_test, fp32_accuracy=fp32,
        )
        assert harsh.quantized_accuracy <= mild.quantized_accuracy + 0.02
        assert harsh.accuracy_loss_percent >= mild.accuracy_loss_percent - 2.0

    def test_quantized_logits_close_to_fp32_at_8_bits(self, tiny_model, tiny_calibration, tiny_dataset):
        quantized = QuantizedModel.build(
            tiny_model, get_method("M2"), 8, 8, calibration_data=tiny_calibration
        )
        x = tiny_dataset.x_test[:8]
        fp32_logits = tiny_model.predict_logits(x)
        quant_logits = quantized.predict_logits(x)
        scale = np.abs(fp32_logits).max() + 1e-9
        assert np.abs(fp32_logits - quant_logits).max() / scale < 0.15

    def test_evaluation_metadata(self, tiny_model, tiny_calibration, tiny_dataset):
        evaluation = quantize_and_evaluate(
            tiny_model, get_method("M4"), 5, 4, tiny_calibration,
            tiny_dataset.x_test, tiny_dataset.y_test,
        )
        assert evaluation.method_key == "M4"
        assert evaluation.activation_bits == 5
        assert evaluation.weight_bits == 4
        assert evaluation.bias_bits == 9
        assert -100.0 <= evaluation.accuracy_loss_percent <= 100.0


class TestFaultInjection:
    def test_zero_probability_injects_nothing(self):
        injector = MsbBitFlipInjector(probability=0.0, rng=0)
        assert injector.accumulation_deltas(np.ones((4, 4)), np.ones((4, 4))) is None

    def test_deltas_are_msb_magnitudes(self):
        injector = MsbBitFlipInjector(probability=1.0, msb_bits=(15,), rng=0)
        q_a = np.full((2, 3), 1.0)
        q_w = np.full((3, 2), 1.0)
        deltas = injector.accumulation_deltas(q_a, q_w)
        # every product is 1 (bit 15 clear) so every delta is +2^15
        assert deltas.sum() == pytest.approx(2 * 3 * 2 * (1 << 15))

    def test_flip_direction_depends_on_bit_value(self):
        injector = MsbBitFlipInjector(probability=1.0, msb_bits=(15,), rng=0)
        q_a = np.full((1, 1), 255.0)
        q_w = np.full((1, 1), 255.0)  # product 65025 has bit 15 set
        deltas = injector.accumulation_deltas(q_a, q_w)
        assert deltas[0, 0] == -(1 << 15)

    def test_expected_fault_count_scales_with_probability(self):
        injector = MsbBitFlipInjector(probability=0.01, rng=0)
        assert injector.expected_faults(10_000) == pytest.approx(100.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MsbBitFlipInjector(probability=1.5)
        with pytest.raises(ValueError):
            MsbBitFlipInjector(probability=0.1, msb_bits=())
        with pytest.raises(ValueError):
            MsbBitFlipInjector(probability=0.1, msb_bits=(16,), product_bits=16)

    def test_shape_mismatch_rejected(self):
        injector = MsbBitFlipInjector(probability=0.5, rng=0)
        with pytest.raises(ValueError):
            injector.accumulation_deltas(np.ones((2, 3)), np.ones((4, 2)))

    def test_accuracy_degrades_with_flip_probability(self, tiny_model, tiny_calibration, tiny_dataset):
        method = get_method("M2")
        clean, _ = evaluate_with_fault_injection(
            tiny_model, method, tiny_calibration, tiny_dataset.x_test, tiny_dataset.y_test,
            flip_probability=0.0, repetitions=1,
        )
        noisy, _ = evaluate_with_fault_injection(
            tiny_model, method, tiny_calibration, tiny_dataset.x_test, tiny_dataset.y_test,
            flip_probability=0.02, repetitions=2,
        )
        assert noisy < clean

    def test_fault_injection_is_removable(self, tiny_model, tiny_calibration, tiny_dataset):
        quantized = QuantizedModel.build(
            tiny_model, get_method("M2"), 8, 8, calibration_data=tiny_calibration
        )
        baseline = quantized.accuracy(tiny_dataset.x_test, tiny_dataset.y_test)
        quantized.set_fault_injector(MsbBitFlipInjector(probability=0.05, rng=1))
        degraded = quantized.accuracy(tiny_dataset.x_test, tiny_dataset.y_test)
        quantized.set_fault_injector(None)
        restored = quantized.accuracy(tiny_dataset.x_test, tiny_dataset.y_test)
        assert degraded <= baseline
        assert restored == pytest.approx(baseline)
