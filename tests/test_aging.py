"""Unit tests for the aging substrate (BTI, delay model, cell libraries)."""

import numpy as np
import pytest

from repro.aging.bti import AgingTimeline, BTIModel, STANDARD_DELTA_VTH_LEVELS_MV
from repro.aging.cell_library import (
    AgingAwareLibrarySet,
    CellLibrary,
    CellSpec,
    end_of_life_guardband_fraction,
    fresh_library,
)
from repro.aging.delay_model import AlphaPowerDelayModel


class TestBTIModel:
    def test_fresh_device_has_no_shift(self):
        assert BTIModel().delta_vth_mv(0.0) == 0.0

    def test_calibrated_to_end_of_life_anchor(self):
        model = BTIModel()
        assert model.delta_vth_mv(10.0) == pytest.approx(50.0, rel=1e-6)

    def test_monotone_in_time(self):
        model = BTIModel()
        values = [model.delta_vth_mv(t) for t in (0.5, 1, 2, 5, 10)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_sublinear_power_law(self):
        model = BTIModel()
        # Doubling the stress time increases ΔVth by less than 2x (n < 1).
        assert model.delta_vth_mv(2.0) < 2 * model.delta_vth_mv(1.0)

    def test_inverse_round_trip(self):
        model = BTIModel()
        for years in (0.5, 3.0, 10.0):
            assert model.years_for_delta_vth(model.delta_vth_mv(years)) == pytest.approx(years, rel=1e-6)

    def test_temperature_accelerates_aging(self):
        model = BTIModel()
        assert model.delta_vth_mv(5.0, temperature_k=400.0) > model.delta_vth_mv(5.0, temperature_k=330.0)

    def test_duty_cycle_reduces_aging(self):
        model = BTIModel()
        assert model.delta_vth_mv(5.0, duty_cycle=0.5) < model.delta_vth_mv(5.0, duty_cycle=1.0)

    def test_invalid_inputs(self):
        model = BTIModel()
        with pytest.raises(ValueError):
            model.delta_vth_mv(-1.0)
        with pytest.raises(ValueError):
            model.delta_vth_mv(1.0, duty_cycle=0.0)
        with pytest.raises(ValueError):
            BTIModel(eol_years=0.0)


class TestAgingTimeline:
    def test_standard_levels(self):
        scenario = AgingTimeline()
        assert scenario.levels_mv == STANDARD_DELTA_VTH_LEVELS_MV
        assert scenario.fresh_level_mv == 0.0
        assert scenario.end_of_life_mv == 50.0

    def test_aged_levels_exclude_fresh(self):
        assert 0.0 not in AgingTimeline().aged_levels_mv()

    def test_timeline_monotone(self):
        timeline = AgingTimeline().timeline()
        years = [entry[1] for entry in timeline]
        assert years == sorted(years)
        assert years[0] == 0.0
        assert years[-1] == pytest.approx(10.0, rel=1e-6)

    def test_unsorted_levels_rejected(self):
        with pytest.raises(ValueError):
            AgingTimeline(levels_mv=(10.0, 0.0))


class TestAlphaPowerDelayModel:
    def test_fresh_factor_is_one(self):
        assert AlphaPowerDelayModel().degradation_factor(0.0) == pytest.approx(1.0)

    def test_end_of_life_near_23_percent(self):
        model = AlphaPowerDelayModel()
        assert model.delay_increase_percent(50.0) == pytest.approx(23.0, abs=1.0)

    def test_monotone_in_delta_vth(self):
        model = AlphaPowerDelayModel()
        factors = [model.degradation_factor(mv) for mv in (0, 10, 20, 30, 40, 50)]
        assert all(b > a for a, b in zip(factors, factors[1:]))

    def test_current_factor_inverse(self):
        model = AlphaPowerDelayModel()
        assert model.current_degradation_factor(30.0) == pytest.approx(
            1.0 / model.degradation_factor(30.0)
        )

    def test_excessive_shift_rejected(self):
        model = AlphaPowerDelayModel()
        with pytest.raises(ValueError):
            model.degradation_factor(model.max_delta_vth_mv() + 1.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            AlphaPowerDelayModel(vdd_v=0.2, vth0_v=0.25)


class TestCellLibrary:
    def test_fresh_library_has_expected_cells(self, fresh_cells):
        for cell in ("INV", "NAND2", "XOR2", "AND2", "OR2", "MUX2"):
            assert cell in fresh_cells

    def test_unknown_cell_raises(self, fresh_cells):
        with pytest.raises(KeyError):
            fresh_cells.cell("NAND8")

    def test_delay_grows_with_fanout(self, fresh_cells):
        assert fresh_cells.delay_ps("INV", fanout=4) > fresh_cells.delay_ps("INV", fanout=1)

    def test_aged_delay_scales_uniformly(self, fresh_cells):
        aged = fresh_cells.aged(50.0)
        ratio = aged.delay_ps("XOR2") / fresh_cells.delay_ps("XOR2")
        assert ratio == pytest.approx(aged.delay_degradation_factor)
        assert ratio > 1.2

    def test_aged_leakage_decreases(self, fresh_cells):
        aged = fresh_cells.aged(50.0)
        assert aged.leakage_power_nw("INV") < fresh_cells.leakage_power_nw("INV")

    def test_switching_energy_unchanged_by_aging(self, fresh_cells):
        aged = fresh_cells.aged(50.0)
        assert aged.switching_energy_fj("NAND2") == fresh_cells.switching_energy_fj("NAND2")

    def test_invalid_cell_spec(self):
        with pytest.raises(ValueError):
            CellSpec("BAD", 0, 1.0, 1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            CellSpec("BAD", 2, -1.0, 1.0, 1.0, 1.0, 1.0)

    def test_empty_library_rejected(self):
        with pytest.raises(ValueError):
            CellLibrary("empty", {})


class TestAgingAwareLibrarySet:
    def test_levels_present(self, library_set):
        assert library_set.levels_mv == (0.0, 10.0, 20.0, 30.0, 40.0, 50.0)

    def test_fresh_is_level_zero(self, library_set):
        assert library_set.library(0.0) is library_set.fresh

    def test_degradation_monotone(self, library_set):
        factors = [library_set.degradation_factor(level) for level in library_set.levels_mv]
        assert factors == sorted(factors)

    def test_lazy_level_generation(self, library_set):
        library = library_set.library(35.0)
        assert library.delta_vth_mv == 35.0

    def test_guardband_fraction_matches_paper(self, library_set):
        assert end_of_life_guardband_fraction(library_set) == pytest.approx(0.23, abs=0.01)

    def test_requires_fresh_base(self, fresh_cells):
        with pytest.raises(ValueError):
            AgingAwareLibrarySet(fresh_cells.aged(10.0), (0.0, 10.0))
