"""Property-based tests of quantization and aging-model invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as npst

from repro.aging.bti import BTIModel
from repro.aging.delay_model import AlphaPowerDelayModel
from repro.quantization.base import QuantParams
from repro.quantization.registry import get_method

_finite_floats = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False, width=64
)


class TestQuantParamsProperties:
    @given(
        values=npst.arrays(np.float64, st.integers(4, 60), elements=_finite_floats),
        num_bits=st.integers(2, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_codes_stay_in_range(self, values, num_bits):
        params = QuantParams.from_range(float(values.min()), float(values.max()), num_bits)
        codes = params.quantize(values)
        assert codes.min() >= 0
        assert codes.max() <= params.max_level

    @given(
        values=npst.arrays(np.float64, st.integers(4, 60), elements=_finite_floats),
        num_bits=st.integers(2, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_error_bounded_inside_range(self, values, num_bits):
        params = QuantParams.from_range(float(values.min()), float(values.max()), num_bits)
        restored = params.quantize_dequantize(values)
        step = float(np.asarray(params.scale))
        assert np.all(np.abs(restored - values) <= step * 0.5 + 1e-9)

    @given(
        values=npst.arrays(np.float64, st.integers(8, 60), elements=_finite_floats),
        key=st.sampled_from(["M1", "M2", "M4", "M5"]),
        num_bits=st.integers(3, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_methods_produce_valid_activation_params(self, values, key, num_bits):
        method = get_method(key)
        params = method.activation_params(values, num_bits)
        codes = params.quantize(values)
        assert codes.min() >= 0 and codes.max() <= params.max_level
        assert np.isfinite(params.dequantize(codes)).all()

    @given(
        num_bits_low=st.integers(2, 5),
        extra_bits=st.integers(1, 4),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_error_monotone_in_bits(self, num_bits_low, extra_bits, seed):
        values = np.random.default_rng(seed).normal(0.0, 1.0, 300)
        coarse = QuantParams.symmetric(3.0, num_bits_low).quantization_error(values)
        fine = QuantParams.symmetric(3.0, num_bits_low + extra_bits).quantization_error(values)
        assert fine <= coarse + 1e-12


class TestAgingModelProperties:
    @given(years=st.floats(0.01, 10.0), extra=st.floats(0.01, 10.0))
    @settings(max_examples=60, deadline=None)
    def test_bti_is_monotone_in_time(self, years, extra):
        model = BTIModel()
        assert model.delta_vth_mv(years + extra) > model.delta_vth_mv(years)

    @given(years=st.floats(0.01, 10.0))
    @settings(max_examples=60, deadline=None)
    def test_bti_inverse_round_trip(self, years):
        model = BTIModel()
        recovered = model.years_for_delta_vth(model.delta_vth_mv(years))
        assert abs(recovered - years) / years < 1e-6

    @given(delta=st.floats(0.0, 200.0), extra=st.floats(0.1, 100.0))
    @settings(max_examples=60, deadline=None)
    def test_delay_degradation_monotone(self, delta, extra):
        model = AlphaPowerDelayModel()
        if delta + extra >= model.max_delta_vth_mv():
            return
        assert model.degradation_factor(delta + extra) > model.degradation_factor(delta)
        assert model.degradation_factor(delta) >= 1.0
