"""Unit tests for nets, gates, netlists and cell boolean functions."""

import pytest

from repro.circuits.constants import propagate_constants
from repro.circuits.gates import CELL_FUNCTIONS, CELL_INPUT_COUNTS, evaluate_cell
from repro.circuits.netlist import Netlist, bus_values_to_bits, bits_to_bus_values


class TestCellFunctions:
    def test_every_cell_has_an_arity(self):
        assert set(CELL_FUNCTIONS) == set(CELL_INPUT_COUNTS)

    @pytest.mark.parametrize(
        "cell,inputs,expected",
        [
            ("INV", (0,), 1),
            ("INV", (1,), 0),
            ("BUF", (1,), 1),
            ("NAND2", (1, 1), 0),
            ("NAND2", (1, 0), 1),
            ("NOR2", (0, 0), 1),
            ("AND2", (1, 1), 1),
            ("OR2", (0, 1), 1),
            ("XOR2", (1, 1), 0),
            ("XNOR2", (1, 1), 1),
            ("MUX2", (1, 0, 0), 1),
            ("MUX2", (1, 0, 1), 0),
            ("AOI21", (1, 1, 0), 0),
            ("AOI21", (0, 0, 0), 1),
            ("OAI21", (1, 0, 1), 0),
            ("OAI21", (0, 0, 1), 1),
        ],
    )
    def test_truth_table_entries(self, cell, inputs, expected):
        assert evaluate_cell(cell, inputs) == expected

    def test_unknown_cell(self):
        with pytest.raises(KeyError):
            evaluate_cell("NAND3", (0, 0, 0))

    def test_wrong_arity(self):
        with pytest.raises(ValueError):
            evaluate_cell("AND2", (1,))

    def test_non_binary_input(self):
        with pytest.raises(ValueError):
            evaluate_cell("AND2", (1, 2))


class TestNetlist:
    def build_simple(self):
        netlist = Netlist("simple")
        a = netlist.add_input_bus("a", 2)
        b = netlist.add_input_bus("b", 1)
        and_out = netlist.add_gate("AND2", (a[0], a[1]))
        or_out = netlist.add_gate("OR2", (and_out, b[0]))
        netlist.add_output_bus("out", [or_out])
        return netlist, a, b

    def test_gate_and_net_counts(self):
        netlist, _, _ = self.build_simple()
        assert netlist.gate_count == 2
        assert netlist.input_width("a") == 2
        assert netlist.output_width("out") == 1

    def test_duplicate_bus_rejected(self):
        netlist, _, _ = self.build_simple()
        with pytest.raises(ValueError):
            netlist.add_input_bus("a", 2)

    def test_constant_nets_are_shared(self):
        netlist = Netlist("c")
        assert netlist.constant(0) is netlist.constant(0)
        assert netlist.constant(0) is not netlist.constant(1)
        with pytest.raises(ValueError):
            netlist.constant(2)

    def test_topological_order_respects_dependencies(self):
        netlist, _, _ = self.build_simple()
        order = netlist.topological_gates()
        assert [gate.cell_name for gate in order] == ["AND2", "OR2"]

    def test_validate_passes_on_well_formed(self):
        netlist, _, _ = self.build_simple()
        netlist.validate()

    def test_foreign_net_rejected(self):
        netlist, a, _ = self.build_simple()
        other = Netlist("other")
        foreign = other.add_input_bus("x", 1)[0]
        with pytest.raises(ValueError):
            netlist.add_gate("AND2", (a[0], foreign))

    def test_unknown_cell_rejected(self):
        netlist, a, _ = self.build_simple()
        with pytest.raises(KeyError):
            netlist.add_gate("NAND4", (a[0], a[1]))

    def test_fanout_tracking(self):
        netlist = Netlist("fanout")
        a = netlist.add_input_bus("a", 1)
        net = a[0]
        netlist.add_gate("INV", (net,))
        netlist.add_gate("BUF", (net,))
        assert net.fanout == 2

    def test_stats_and_histogram(self):
        netlist, _, _ = self.build_simple()
        stats = netlist.stats()
        assert stats["gates"] == 2
        assert stats["cells"] == {"AND2": 1, "OR2": 1}

    def test_bus_conversion_round_trip(self):
        netlist, a, b = self.build_simple()
        values = {"a": 3, "b": 1}
        bits = bus_values_to_bits(values, netlist.input_buses)
        assert bits[a[0]] == 1 and bits[a[1]] == 1 and bits[b[0]] == 1
        assert bits_to_bus_values(bits, netlist.input_buses) == values

    def test_bus_value_out_of_range(self):
        netlist, _, _ = self.build_simple()
        with pytest.raises(ValueError):
            bus_values_to_bits({"a": 4, "b": 0}, netlist.input_buses)

    def test_missing_bus_value(self):
        netlist, _, _ = self.build_simple()
        with pytest.raises(KeyError):
            bus_values_to_bits({"a": 1}, netlist.input_buses)


class TestConstantPropagation:
    def test_controlling_zero_kills_and_gate(self):
        netlist = Netlist("const")
        a = netlist.add_input_bus("a", 1)
        zero = netlist.constant(0)
        and_out = netlist.add_gate("AND2", (a[0], zero))
        or_out = netlist.add_gate("OR2", (and_out, a[0]))
        netlist.add_output_bus("out", [or_out])
        constants = propagate_constants(netlist)
        assert constants[and_out] == 0
        assert or_out not in constants

    def test_case_analysis_assignment_propagates(self):
        netlist = Netlist("case")
        a = netlist.add_input_bus("a", 2)
        and_out = netlist.add_gate("AND2", (a[0], a[1]))
        netlist.add_output_bus("out", [and_out])
        constants = propagate_constants(netlist, {a[0]: 0})
        assert constants[and_out] == 0

    def test_controlling_one_forces_or_gate(self):
        netlist = Netlist("or1")
        a = netlist.add_input_bus("a", 1)
        one = netlist.constant(1)
        or_out = netlist.add_gate("OR2", (a[0], one))
        netlist.add_output_bus("out", [or_out])
        assert propagate_constants(netlist)[or_out] == 1

    def test_xor_with_constant_is_not_constant(self):
        netlist = Netlist("xor")
        a = netlist.add_input_bus("a", 1)
        zero = netlist.constant(0)
        xor_out = netlist.add_gate("XOR2", (a[0], zero))
        netlist.add_output_bus("out", [xor_out])
        assert xor_out not in propagate_constants(netlist)

    def test_invalid_assignment_value(self):
        netlist = Netlist("bad")
        a = netlist.add_input_bus("a", 1)
        with pytest.raises(ValueError):
            propagate_constants(netlist, {a[0]: 3})
